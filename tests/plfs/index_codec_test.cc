// Property/fuzz tests for the varint codec and the v2 index wire format.
//
// The invariant under test: for any entry batch — strided, sequential,
// overlapping, irregular, hostile timestamps — encode(v2) then decode
// reproduces the exact entry vector, in order, bit for bit. And for any
// damaged buffer — truncated at every possible length, any single byte
// flipped, version confused — decoding rejects with an Errc::io_error that
// names a byte offset, never crashes, never returns wrong entries.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/varint.h"
#include "plfs/index.h"
#include "plfs/index_builder.h"
#include "plfs/mount.h"
#include "plfs/pattern.h"

namespace tio::plfs {
namespace {

FragmentList as_fragments(std::vector<std::byte> bytes) {
  FragmentList fl;
  fl.append(DataView::literal(std::move(bytes)));
  return fl;
}

// --- varint layer ---------------------------------------------------------

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  (1ull << 63) - 1,
                                  1ull << 63,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) {
    std::vector<std::byte> buf;
    put_varint(buf, v);
    EXPECT_EQ(buf.size(), varint_size(v)) << v;
    ByteReader r(buf.data(), buf.size());
    std::uint64_t got = 0;
    ASSERT_TRUE(r.get_varint(got)) << v;
    EXPECT_EQ(got, v);
    EXPECT_EQ(r.remaining(), 0u) << v;
  }
}

TEST(Varint, SignedZigzagRoundTrips) {
  const std::int64_t values[] = {0,
                                 -1,
                                 1,
                                 -64,
                                 63,
                                 -65,
                                 64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
    std::vector<std::byte> buf;
    put_varint_signed(buf, v);
    ByteReader r(buf.data(), buf.size());
    std::int64_t got = 0;
    ASSERT_TRUE(r.get_varint_signed(got)) << v;
    EXPECT_EQ(got, v);
  }
  // Small magnitudes stay small on the wire — the point of zigzag.
  std::vector<std::byte> buf;
  put_varint_signed(buf, -3);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Varint, RandomFuzzRoundTrips) {
  Rng rng(0xC0DEC);
  std::vector<std::byte> buf;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 10000; ++i) {
    // Mix magnitudes so every encoded length is exercised.
    const std::uint64_t v = rng.below(std::numeric_limits<std::uint64_t>::max()) >> rng.below(64);
    values.push_back(v);
    put_varint(buf, v);
  }
  ByteReader r(buf.data(), buf.size());
  for (const std::uint64_t v : values) {
    std::uint64_t got = 0;
    ASSERT_TRUE(r.get_varint(got));
    ASSERT_EQ(got, v);
  }
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Varint, RejectsTruncatedAndOverlong) {
  // Truncated: continuation bit set but the buffer ends.
  const std::byte trunc[] = {std::byte{0x80}, std::byte{0x80}};
  ByteReader r1(trunc, sizeof(trunc));
  std::uint64_t out = 0;
  EXPECT_FALSE(r1.get_varint(out));
  // Overlong: 10 continuation bytes with bits beyond the 64th.
  std::vector<std::byte> over(10, std::byte{0xFF});
  ByteReader r2(over.data(), over.size());
  EXPECT_FALSE(r2.get_varint(out));
  // 11-byte encoding is rejected even if it would decode to a small value.
  std::vector<std::byte> eleven(10, std::byte{0x80});
  eleven.push_back(std::byte{0x01});
  ByteReader r3(eleven.data(), eleven.size());
  EXPECT_FALSE(r3.get_varint(out));
}

// --- workload generators --------------------------------------------------

// N-1 strided checkpoint: the pattern codec's home turf.
std::vector<IndexEntry> strided_workload(int writers, int rounds, std::uint64_t record) {
  std::vector<IndexEntry> out;
  std::vector<std::uint64_t> phys(writers, 0);
  for (int r = 0; r < rounds; ++r) {
    for (int w = 0; w < writers; ++w) {
      out.push_back(IndexEntry{(static_cast<std::uint64_t>(r) * writers + w) * record, record,
                               phys[w], static_cast<std::int64_t>(out.size()) * 1000 + 17,
                               static_cast<std::uint32_t>(w)});
      phys[w] += record;
    }
  }
  return out;
}

// One writer appending sequentially.
std::vector<IndexEntry> sequential_workload(int records, std::uint64_t record) {
  std::vector<IndexEntry> out;
  for (int i = 0; i < records; ++i) {
    out.push_back(IndexEntry{static_cast<std::uint64_t>(i) * record, record,
                             static_cast<std::uint64_t>(i) * record,
                             static_cast<std::int64_t>(i + 1), 0});
  }
  return out;
}

// Random overlapping writes with irregular sizes and timestamps: worst case
// for the detector, everything spills to delta-coded literals.
std::vector<IndexEntry> irregular_workload(std::uint64_t seed, int writers, int ops) {
  Rng rng(seed);
  std::vector<IndexEntry> out;
  std::vector<std::uint64_t> phys(writers, 0);
  for (int op = 0; op < ops; ++op) {
    const auto writer = static_cast<std::uint32_t>(rng.below(writers));
    const std::uint64_t len = 1 + rng.below(64 << 10);
    const std::uint64_t off = rng.below(1 << 20);
    out.push_back(IndexEntry{off, len, phys[writer],
                             static_cast<std::int64_t>(op * 1000 + rng.below(997)), writer});
    phys[writer] += len;
  }
  return out;
}

struct NamedWorkload {
  const char* name;
  std::vector<IndexEntry> entries;
};

std::vector<NamedWorkload> all_workloads() {
  std::vector<NamedWorkload> out;
  out.push_back({"strided", strided_workload(16, 64, 47 << 10)});
  out.push_back({"sequential", sequential_workload(2048, 4096)});
  out.push_back({"overlapping", strided_workload(8, 32, 8192)});
  // Overlap the strided base with a second pass at half stride.
  for (auto e : strided_workload(8, 32, 8192)) {
    e.logical_offset += 4096;
    e.timestamp_ns += 1 << 20;
    out.back().entries.push_back(e);
  }
  out.push_back({"irregular", irregular_workload(0xFEED, 6, 1500)});
  out.push_back({"tiny", {IndexEntry{0, 100, 0, 1, 0}}});
  return out;
}

// --- v2 round trips -------------------------------------------------------

TEST(WireV2, RoundTripsBitExactly) {
  for (const auto& [name, entries] : all_workloads()) {
    const auto buf = encode_entries(entries, WireFormat::v2);
    const auto got = decode_entries(as_fragments(buf));
    ASSERT_TRUE(got.ok()) << name << ": " << got.status();
    EXPECT_EQ(*got, entries) << name;  // same entries, same order
  }
}

TEST(WireV2, ConcatenatedSegmentsDecodeInOrder) {
  // Index logs are flushed in batches; the file is segment after segment.
  const auto a = strided_workload(4, 16, 4096);
  const auto b = irregular_workload(0xBEEF, 3, 100);
  std::vector<std::byte> buf;
  append_encoded(buf, a, WireFormat::v2);
  append_encoded(buf, b, WireFormat::v2);
  const auto got = decode_entries(as_fragments(buf));
  ASSERT_TRUE(got.ok()) << got.status();
  std::vector<IndexEntry> want = a;
  want.insert(want.end(), b.begin(), b.end());
  EXPECT_EQ(*got, want);
}

TEST(WireV2, EmptyBatchEncodesToNothing) {
  EXPECT_TRUE(encode_entries({}, WireFormat::v2).empty());
  EXPECT_EQ(encoded_size({}, WireFormat::v2), 0u);
  const auto got = decode_entries(FragmentList{});
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST(WireV2, IrregularTimestampsUseResidualsNotCorrectness) {
  // Arithmetic offsets but jittered timestamps: still one pattern run on
  // the wire (with residuals), still bit-exact.
  auto entries = sequential_workload(512, 4096);
  Rng rng(0x7157);
  for (auto& e : entries) e.timestamp_ns += static_cast<std::int64_t>(rng.below(30)) - 15;
  const auto buf = encode_entries(entries, WireFormat::v2);
  const auto got = decode_entries(as_fragments(buf));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, entries);
  // Residuals cost bytes, not a fallback to 40-byte literals.
  EXPECT_LT(buf.size(), entries.size() * IndexEntry::kSerializedSize / 4);
}

TEST(WireV2, CompressesStridedWorkloadTenfold) {
  const auto entries = strided_workload(256, 64, 47 << 10);
  const std::uint64_t v1 = encoded_size(entries, WireFormat::v1);
  const std::uint64_t v2 = encoded_size(entries, WireFormat::v2);
  EXPECT_EQ(v1, entries.size() * IndexEntry::kSerializedSize);
  EXPECT_GE(v1 / v2, 10u) << "v1=" << v1 << " v2=" << v2;
}

TEST(WireV2, FuzzedPoolsRoundTripAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto entries = irregular_workload(seed * 0x9E3779B97F4A7C15ull, 1 + seed % 7,
                                            static_cast<int>(10 + seed * 13));
    const auto buf = encode_entries(entries, WireFormat::v2);
    const auto got = decode_entries(as_fragments(buf));
    ASSERT_TRUE(got.ok()) << "seed " << seed << ": " << got.status();
    ASSERT_EQ(*got, entries) << "seed " << seed;
  }
}

// --- rejection of damaged buffers -----------------------------------------

TEST(WireV2, EveryTruncationIsRejected) {
  const auto entries = strided_workload(4, 8, 4096);
  const auto buf = encode_entries(entries, WireFormat::v2);
  for (std::size_t len = 1; len < buf.size(); ++len) {
    auto prefix = buf;
    prefix.resize(len);
    const auto got = decode_entries(as_fragments(std::move(prefix)));
    ASSERT_FALSE(got.ok()) << "prefix length " << len;
    EXPECT_EQ(got.status().code(), Errc::io_error) << len;
    EXPECT_NE(got.status().message().find("byte offset"), std::string::npos)
        << len << ": " << got.status();
  }
}

TEST(WireV2, EverySingleByteFlipIsRejected) {
  // The crc is verified before block parsing, so any flip inside the
  // segment fails; flips inside the crc itself mismatch too. (The v2-only
  // entry point is used on purpose: a flipped magic byte would otherwise
  // just route the buffer to the v1 parser.)
  const auto entries = irregular_workload(0xF11E, 3, 60);
  const auto buf = encode_entries(entries, WireFormat::v2);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    for (const unsigned bit : {0u, 3u, 7u}) {
      auto bad = buf;
      bad[i] ^= static_cast<std::byte>(1u << bit);
      const auto got = decode_entries_v2(bad.data(), bad.size());
      ASSERT_FALSE(got.ok()) << "byte " << i << " bit " << bit;
      EXPECT_EQ(got.status().code(), Errc::io_error);
    }
  }
}

TEST(WireV2, VersionConfusionIsNamed) {
  const auto entries = sequential_workload(32, 4096);
  auto buf = encode_entries(entries, WireFormat::v2);
  buf[4] = std::byte{9};  // version byte follows the 4-byte magic
  const auto got = decode_entries(as_fragments(std::move(buf)));
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("unsupported wire version 9"), std::string::npos)
      << got.status();
  EXPECT_NE(got.status().message().find("byte offset 4"), std::string::npos) << got.status();
}

TEST(WireV2, GarbageAfterValidSegmentIsRejected) {
  const auto entries = sequential_workload(32, 4096);
  auto buf = encode_entries(entries, WireFormat::v2);
  const std::size_t tail = buf.size();
  buf.insert(buf.end(), {std::byte{0xDE}, std::byte{0xAD}, std::byte{0xBE}, std::byte{0xEF}});
  const auto got = decode_entries(as_fragments(std::move(buf)));
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("bad segment magic"), std::string::npos) << got.status();
  EXPECT_NE(got.status().message().find("byte offset " + std::to_string(tail)),
            std::string::npos)
      << got.status();
}

// --- v1 compatibility ------------------------------------------------------

TEST(WireCompat, V1BuffersStillDecodeThroughAutoDetect) {
  for (const auto& [name, entries] : all_workloads()) {
    const auto buf = serialize_entries(entries);  // fixed 40-byte records
    const auto got = decode_entries(as_fragments(buf));
    ASSERT_TRUE(got.ok()) << name << ": " << got.status();
    EXPECT_EQ(*got, entries) << name;
  }
}

TEST(WireCompat, TrailerAcceptsBothWireFormats) {
  const auto entries = strided_workload(8, 32, 8192);
  const auto v1 = serialize_entries_with_trailer(entries, WireFormat::v1);
  const auto v2 = serialize_entries_with_trailer(entries, WireFormat::v2);
  EXPECT_LT(v2.size(), v1.size() / 4);
  for (const auto* bytes : {&v1, &v2}) {
    const auto got = deserialize_trailed_entries(as_fragments(*bytes));
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->size(), entries.size());
  }
}

// --- PatternIndex representation ------------------------------------------

TEST(PatternIndexRep, StridedWorkloadCollapsesToRuns) {
  const auto entries = strided_workload(16, 256, 47 << 10);
  const PatternIndex idx = PatternIndex::build(entries);
  const FlatIndex flat = FlatIndex::build(entries);
  // Same canonical mapping set...
  EXPECT_EQ(serialize_entries(idx.to_entries()), serialize_entries(flat.to_entries()));
  // ...but stored as a handful of arithmetic runs, not per-mapping rows,
  // which is what the IndexCache ends up charging.
  EXPECT_LE(idx.run_count() + idx.literal_count(), idx.mapping_count() / 10);
  EXPECT_LT(idx.memory_bytes(), flat.memory_bytes());
}

TEST(PatternIndexRep, SerializedBytesMatchTheWireEncoder) {
  const auto entries = strided_workload(16, 64, 8192);
  const PatternIndex idx = PatternIndex::build(entries);
  EXPECT_EQ(idx.serialized_bytes(WireFormat::v1),
            idx.mapping_count() * IndexEntry::kSerializedSize);
  EXPECT_EQ(idx.serialized_bytes(WireFormat::v2), encoded_size(idx.to_entries(), WireFormat::v2));
  EXPECT_LT(idx.serialized_bytes(WireFormat::v2), idx.serialized_bytes(WireFormat::v1));
}

}  // namespace
}  // namespace tio::plfs
