#include "testbed/testbed.h"

#include <gtest/gtest.h>

namespace tio::testbed {
namespace {

TEST(Presets, LanlClusterMatchesPaperTestbed) {
  const auto c = lanl_cluster();
  EXPECT_EQ(c.nodes, 64u);
  EXPECT_EQ(c.cores_per_node, 16u);
  EXPECT_EQ(c.total_cores(), 1024u);  // "64 nodes each with 16 AMD Opteron cores"
  EXPECT_DOUBLE_EQ(c.storage_net_bandwidth, 1.25e9);  // the quoted theoretical peak
  EXPECT_EQ(c.memory_per_node, 32_GiB);
}

TEST(Presets, CieloHostsTheLargeRuns) {
  const auto c = cielo();
  EXPECT_GE(c.total_cores(), 65536u);  // must fit the paper's largest job
  EXPECT_GT(c.storage_net_bandwidth, lanl_cluster().storage_net_bandwidth);
}

TEST(Presets, PfsConfigsParameterizeMds) {
  EXPECT_EQ(lanl_pfs(1).num_mds, 1u);
  EXPECT_EQ(lanl_pfs(9).num_mds, 9u);
  EXPECT_EQ(cielo_pfs().num_mds, 10u);  // the paper's federated default
  EXPECT_EQ(cielo_pfs(20).num_mds, 20u);
}

TEST(PlfsMountHelper, BackendsAndSpreadPolicies) {
  const auto single = plfs_mount(1);
  EXPECT_EQ(single.backends.size(), 1u);
  EXPECT_FALSE(single.spread_containers);
  EXPECT_FALSE(single.spread_subdirs);
  const auto ten = plfs_mount(10);
  EXPECT_EQ(ten.backends.size(), 10u);
  EXPECT_TRUE(ten.spread_containers);
  EXPECT_TRUE(ten.spread_subdirs);
  EXPECT_EQ(ten.backends[3], "/vol3/plfs");
  EXPECT_THROW(plfs_mount(0), std::invalid_argument);
}

TEST(Rig, MountsVolumesAndDirectDir) {
  Rig rig({.cluster = lanl_cluster(), .pfs = lanl_pfs(4)});
  EXPECT_EQ(rig.mount().backends.size(), 4u);  // one backend per MDS by default
  for (const auto& b : rig.mount().backends) {
    EXPECT_TRUE(rig.pfs().ns().exists(b)) << b;
  }
  EXPECT_TRUE(rig.pfs().ns().exists(rig.direct_dir()));
}

TEST(Rig, VolumesLandOnDistinctMds) {
  Rig rig({.cluster = lanl_cluster(), .pfs = lanl_pfs(4)});
  // /vol0../vol3 must map to 4 distinct metadata servers (glued realms).
  std::set<std::size_t> mds;
  for (const auto& b : rig.mount().backends) mds.insert(rig.pfs().mds_of_path(b));
  EXPECT_EQ(mds.size(), 4u);
}

TEST(Rig, ExplicitBackendCountOverridesDefault) {
  Rig rig({.cluster = lanl_cluster(), .pfs = lanl_pfs(4), .plfs_backends = 2});
  EXPECT_EQ(rig.mount().backends.size(), 2u);
}

}  // namespace
}  // namespace tio::testbed
