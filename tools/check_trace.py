#!/usr/bin/env python3
"""Validate a Chrome trace-event file produced by the benches (--trace=).

Checks, per engine ("pid" in the trace):
  1. The file is valid JSON with a traceEvents list of complete events.
  2. Durations are non-negative.
  3. The per-phase open breakdown adds up: within each `harness.open_read`
     window (barrier-to-barrier, so identical on every rank — deduped to
     one per engine), the rank whose `plfs.open`-category spans sum highest
     (the critical-path rank every other rank waits for at the barrier)
     accounts for the window's duration to within --tolerance (default 1%).
  4. When collective-buffering windows are present (`cb.write`/`cb.read`,
     category "iolib.cb"), each rank's "iolib.cb.phase" child spans tile
     the window: per (pid, tid), the phase spans inside a window sum to
     its duration within --tolerance. Virtual time only advances at
     awaits and every await in the collective layer sits inside exactly
     one phase span, so this reconciliation is exact by construction —
     any gap means an unattributed await crept in.

With --expect-shards=N, additionally asserts the document was exported by
an N-shard run: multi-shard traces carry {"otherData": {"shards": N}},
single-shard traces omit the key (implied 1).

Exit status 0 when every window passes, 1 otherwise.

Usage: check_trace.py TRACE.json [--tolerance=0.01] [--expect-shards=N] [--verbose]
"""

import json
import sys
from collections import defaultdict


def main(argv):
    tolerance = 0.01
    verbose = False
    expect_shards = None
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("--expect-shards="):
            expect_shards = int(arg.split("=", 1)[1])
        elif arg == "--verbose":
            verbose = True
        else:
            paths.append(arg)
    if len(paths) != 1:
        raise SystemExit(__doc__)
    path = paths[0]
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise SystemExit(f"{path}: no traceEvents list")

    if expect_shards is not None:
        got = doc.get("otherData", {}).get("shards", 1)
        if got != expect_shards:
            print(f"{path}: expected a {expect_shards}-shard trace, got shards={got}",
                  file=sys.stderr)
            return 1

    # (pid, tid) -> list of (ts, dur, name, cat) complete spans.
    spans = defaultdict(list)
    for ev in events:
        if ev.get("ph") != "X":
            continue
        ts, dur = float(ev["ts"]), float(ev["dur"])
        if dur < 0:
            raise SystemExit(f"{path}: negative duration in {ev}")
        spans[(ev["pid"], ev["tid"])].append((ts, dur, ev["name"], ev.get("cat", "")))

    # Every rank carries the same barrier-to-barrier open_read window;
    # dedupe to one per (pid, ts, dur).
    windows = sorted(
        {
            (pid, ts, dur)
            for (pid, _), track in spans.items()
            for ts, dur, name, _ in track
            if name == "harness.open_read" and dur > 0
        }
    )

    n_failed = 0
    n_checked = 0
    for pid, wts, wdur in windows:
        # Critical-path rank: the max across ranks of the summed plfs.open
        # phase time inside this window, same engine.
        best, best_tid = 0.0, None
        phase_names = set()
        for (opid, otid), track in spans.items():
            if opid != pid:
                continue
            total = 0.0
            for ts, dur, name, cat in track:
                if cat == "plfs.open" and wts <= ts and ts + dur <= wts + wdur + 1e-6:
                    total += dur
                    phase_names.add(name)
            if total > best:
                best, best_tid = total, otid
        if best_tid is None:
            # No plfs.open spans inside this window at all: a direct-access
            # (non-PLFS) open, e.g. fig5's direct cells. Nothing to
            # reconcile against.
            continue
        n_checked += 1
        rel = abs(best - wdur) / wdur
        ok = rel <= tolerance
        n_failed += not ok
        if verbose or not ok:
            status = "ok" if ok else "FAIL"
            print(
                f"{status}: pid={pid} open window @{wts:.3f}us dur={wdur:.3f}us "
                f"critical rank tid={best_tid} phases sum={best:.3f}us "
                f"({rel * 100:.3f}% off; phases: {sorted(phase_names)})"
            )
    if not windows:
        print(f"{path}: no harness.open_read windows found", file=sys.stderr)
        return 1

    # Collective-buffering windows reconcile per rank: the phase spans on
    # the same track must tile each cb.write/cb.read window exactly.
    n_cb = n_cb_failed = 0
    for (pid, tid), track in spans.items():
        for wts, wdur, name, cat in track:
            if cat != "iolib.cb" or wdur <= 0:
                continue
            n_cb += 1
            total = sum(
                dur
                for ts, dur, _, pcat in track
                if pcat == "iolib.cb.phase" and wts <= ts and ts + dur <= wts + wdur + 1e-6
            )
            rel = abs(total - wdur) / wdur
            ok = rel <= tolerance
            n_cb_failed += not ok
            if verbose or not ok:
                status = "ok" if ok else "FAIL"
                print(
                    f"{status}: pid={pid} tid={tid} {name} window @{wts:.3f}us "
                    f"dur={wdur:.3f}us phase sum={total:.3f}us ({rel * 100:.3f}% off)"
                )

    print(f"{path}: {n_checked - n_failed}/{n_checked} PLFS open windows within "
          f"{tolerance * 100:g}% ({len(windows) - n_checked} direct skipped, "
          f"{len(events)} events)")
    if n_cb:
        print(f"{path}: {n_cb - n_cb_failed}/{n_cb} collective-buffering windows reconcile")
    return 1 if (n_failed or n_cb_failed) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
