// Shared plumbing for the figure-reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/stats.h"
#include "common/strutil.h"
#include "common/table.h"
#include "testbed/testbed.h"
#include "workloads/harness.h"
#include "workloads/kernels.h"
#include "workloads/metadata.h"

namespace tio::bench {

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("   paper reference: %s\n\n", paper_ref.c_str());
}

// MB/s (decimal), the unit the paper plots.
inline double mbps(double bytes_per_sec) { return bytes_per_sec / 1e6; }

// Builds a fresh LANL-cluster rig (Sections III-V testbed).
inline testbed::Rig::Options lanl_rig(std::size_t num_mds = 1, std::size_t backends = 0) {
  testbed::Rig::Options o;
  o.cluster = testbed::lanl_cluster();
  o.pfs = testbed::lanl_pfs(num_mds);
  o.plfs_backends = backends;
  return o;
}

// Builds a fresh Cielo rig (Section VI testbed).
inline testbed::Rig::Options cielo_rig(std::size_t num_mds = 10, std::size_t backends = 0) {
  testbed::Rig::Options o;
  o.cluster = testbed::cielo();
  o.pfs = testbed::cielo_pfs(num_mds);
  o.plfs_backends = backends;
  return o;
}

// Doubling sweep capped at `max`, always including `max` itself.
inline std::vector<int> sweep(int from, int max) {
  std::vector<int> out;
  for (int v = from; v < max; v *= 2) out.push_back(v);
  if (out.empty() || out.back() != max) out.push_back(max);
  return out;
}

// Shared --index_backend flag (btree|flat) for the figure harnesses.
inline std::string* add_index_backend_flag(FlagSet& flags) {
  return flags.add_string("index_backend", "flat", "global index backend: btree|flat");
}

// Flag-value -> IndexBackend; exits with a usage message on bad input.
inline plfs::IndexBackend index_backend_or_die(const std::string& name) {
  plfs::IndexBackend backend = plfs::IndexBackend::flat;
  if (!plfs::parse_index_backend(name, backend)) {
    std::fprintf(stderr, "unknown --index_backend (want btree|flat): %s\n", name.c_str());
    std::exit(1);
  }
  return backend;
}

// Host-side index/cache instrumentation accumulated during the run.
inline void print_index_counters() {
  const auto counters = counter_snapshot("plfs.index");
  if (counters.empty()) return;
  std::printf("\n-- index counters (host-side) --\n");
  for (const auto& [name, value] : counters) {
    std::printf("%-36s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
  }
}

}  // namespace tio::bench
