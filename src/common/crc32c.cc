#include "common/crc32c.h"

#include <array>

namespace tio {

namespace {

// One-time table for the reflected polynomial, byte-at-a-time.
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (c >> 1) ^ 0x82F63B78u : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace tio
