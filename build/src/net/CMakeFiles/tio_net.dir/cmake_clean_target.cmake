file(REMOVE_RECURSE
  "libtio_net.a"
)
