#include "plfs/plfs.h"

#include <algorithm>
#include <limits>

#include "common/strutil.h"

namespace tio::plfs {

using pfs::OpenFlags;

Plfs::Plfs(pfs::FsClient& fs, PlfsMount mount)
    : fs_(fs), mount_(std::move(mount)), cache_(mount_.index_cache_bytes) {
  if (mount_.backends.empty()) {
    throw std::invalid_argument("PlfsMount must have at least one backend");
  }
}

sim::Task<Status> Plfs::ensure_dir(pfs::IoCtx ctx, std::string dir) {
  auto st = co_await fs_.stat(ctx, dir);
  if (st.ok()) {
    if (!st->is_dir) co_return error(Errc::not_a_directory, dir);
    co_return Status::Ok();
  }
  Status made = co_await fs_.mkdir(ctx, dir);
  if (!made.ok() && made.code() != Errc::exists) co_return made;
  co_return Status::Ok();
}

sim::Task<Status> Plfs::ensure_container_skeleton(pfs::IoCtx ctx, const ContainerLayout& layout) {
  // Parent chain below the canonical backend root (the roots themselves are
  // "mounted", i.e. pre-existing).
  const std::string parent_logical(path_dirname(layout.logical()));
  const std::size_t canonical = layout.canonical_backend();
  if (parent_logical != "/") {
    std::string built = mount_.backends[canonical];
    for (const auto comp : path_components(parent_logical)) {
      built = path_join(built, comp);
      TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, built));
    }
  }
  TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, layout.canonical_container()));
  // The access marker: created once, tolerated when racing.
  auto access = co_await fs_.open(ctx, layout.access_path(), OpenFlags::wr_create_excl());
  if (access.ok()) {
    TIO_CO_RETURN_IF_ERROR(co_await fs_.close(ctx, *access));
  } else if (access.status().code() != Errc::exists) {
    co_return access.status();
  }
  TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, layout.meta_dir()));
  TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, layout.openhosts_dir()));
  co_return Status::Ok();
}

sim::Task<Result<std::unique_ptr<WriteHandle>>> Plfs::open_write(pfs::IoCtx ctx,
                                                                 std::string logical, int rank) {
  ContainerLayout lay = layout(logical);
  cache_.invalidate(path_normalize(logical));  // this container is about to change
  TIO_CO_RETURN_IF_ERROR(co_await ensure_container_skeleton(ctx, lay));

  // My subdir lives on its hashed backend; ensure the shadow chain there.
  const std::size_t k = lay.subdir_of_rank(rank);
  const std::size_t backend = lay.subdir_backend(k);
  if (backend != lay.canonical_backend()) {
    const std::string parent_logical(path_dirname(lay.logical()));
    if (parent_logical != "/") {
      std::string built = mount_.backends[backend];
      for (const auto comp : path_components(parent_logical)) {
        built = path_join(built, comp);
        TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, built));
      }
    }
    TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, lay.container_on(backend)));
  }
  TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, lay.subdir_path(k)));

  TIO_CO_ASSIGN_OR_RETURN(pfs::FileId data_fd,
                          co_await fs_.open(ctx, lay.data_log_path(rank), OpenFlags::wr_trunc()));
  TIO_CO_ASSIGN_OR_RETURN(
      pfs::FileId index_fd,
      co_await fs_.open(ctx, lay.index_log_path(rank), OpenFlags::wr_trunc()));

  // Record this writer in openhosts/.
  auto host = co_await fs_.open(ctx, lay.openhost_record_path(rank), OpenFlags::wr_create());
  if (!host.ok()) co_return host.status();
  TIO_CO_RETURN_IF_ERROR(co_await fs_.close(ctx, *host));

  co_return std::unique_ptr<WriteHandle>(
      new WriteHandle(*this, ctx, std::move(lay), rank, data_fd, index_fd));
}

sim::Task<Status> WriteHandle::write(std::uint64_t logical_offset, DataView data) {
  if (closed_) co_return error(Errc::bad_handle, "write on closed handle");
  if (data.empty()) co_return Status::Ok();
  const std::uint64_t len = data.size();
  // Log-structured: always append, regardless of the logical offset.
  TIO_CO_ASSIGN_OR_RETURN(
      std::uint64_t written,
      co_await plfs_->fs_.write(ctx_, data_fd_, data_offset_, std::move(data)));
  (void)written;
  entries_.push_back(IndexEntry{logical_offset, len, data_offset_,
                                plfs_->engine().now().to_ns(),
                                static_cast<std::uint32_t>(rank_)});
  data_offset_ += len;
  high_water_ = std::max(high_water_, logical_offset + len);
  if (entries_.size() - flushed_ >= plfs_->mount_.index_flush_every) {
    TIO_CO_RETURN_IF_ERROR(co_await flush_index());
  }
  co_return Status::Ok();
}

sim::Task<Status> WriteHandle::flush_index() {
  if (flushed_ == entries_.size()) co_return Status::Ok();
  std::vector<std::byte> buf;
  buf.reserve((entries_.size() - flushed_) * IndexEntry::kSerializedSize);
  for (std::size_t i = flushed_; i < entries_.size(); ++i) {
    append_serialized(buf, entries_[i]);
  }
  const std::uint64_t n = buf.size();
  TIO_CO_ASSIGN_OR_RETURN(std::uint64_t written,
                          co_await plfs_->fs_.write(ctx_, index_fd_, index_offset_,
                                                    DataView::literal(std::move(buf))));
  (void)written;
  index_offset_ += n;
  flushed_ = entries_.size();
  co_return Status::Ok();
}

sim::Task<Status> WriteHandle::close() {
  if (closed_) co_return error(Errc::bad_handle, "double close");
  TIO_CO_RETURN_IF_ERROR(co_await flush_index());
  TIO_CO_RETURN_IF_ERROR(co_await plfs_->fs_.close(ctx_, data_fd_));
  TIO_CO_RETURN_IF_ERROR(co_await plfs_->fs_.close(ctx_, index_fd_));
  // Size dropping: the logical high water is encoded in the name, so stat
  // never needs index aggregation.
  auto drop = co_await plfs_->fs_.open(ctx_, layout_.meta_dropping_path(rank_, high_water_),
                                       OpenFlags::wr_create());
  if (!drop.ok()) co_return drop.status();
  TIO_CO_RETURN_IF_ERROR(co_await plfs_->fs_.close(ctx_, *drop));
  TIO_CO_RETURN_IF_ERROR(
      co_await plfs_->fs_.unlink(ctx_, layout_.openhost_record_path(rank_)));
  closed_ = true;
  co_return Status::Ok();
}

sim::Task<Result<std::vector<Plfs::IndexLogRef>>> Plfs::list_index_logs(
    pfs::IoCtx ctx, const std::string& logical) {
  ContainerLayout lay = layout(logical);
  // A logical file must be a container (the access marker proves it);
  // otherwise reads of unlinked/never-written paths would "succeed" empty.
  TIO_CO_ASSIGN_OR_RETURN(bool container, co_await is_container(ctx, logical));
  if (!container) co_return error(Errc::not_found, logical);
  std::vector<IndexLogRef> out;
  for (std::size_t k = 0; k < lay.num_subdirs(); ++k) {
    const std::string subdir = lay.subdir_path(k);
    auto entries = co_await fs_.readdir(ctx, subdir);
    if (!entries.ok()) {
      if (entries.status().code() == Errc::not_found) continue;  // unused subdir
      co_return entries.status();
    }
    for (const auto& e : *entries) {
      std::uint32_t writer = 0;
      if (!e.is_dir && parse_index_log_name(e.name, &writer)) {
        out.push_back(IndexLogRef{path_join(subdir, e.name), writer});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const IndexLogRef& a, const IndexLogRef& b) { return a.writer < b.writer; });
  co_return out;
}

sim::Task<Result<std::shared_ptr<const std::vector<IndexEntry>>>> Plfs::read_index_log(
    pfs::IoCtx ctx, std::string logical, std::string path) {
  // Simulated costs are always paid in full; only the parsed host structure
  // is shared across readers, through the container-scoped cache.
  TIO_CO_ASSIGN_OR_RETURN(pfs::FileId fd, co_await fs_.open(ctx, path, OpenFlags::ro()));
  auto data = co_await fs_.read(ctx, fd, 0, std::numeric_limits<std::int64_t>::max());
  TIO_CO_RETURN_IF_ERROR(co_await fs_.close(ctx, fd));
  if (!data.ok()) co_return data.status();
  const std::string container = path_normalize(logical);
  const std::uint64_t gen = cache_.generation(container);
  co_await engine().sleep(mount_.index_cpu_per_entry *
                          static_cast<std::int64_t>(data->size() / IndexEntry::kSerializedSize));
  auto cached = cache_.get_log(container, path);
  if (cached == nullptr) {
    auto entries = deserialize_entries(*data);
    if (!entries.ok()) co_return entries.status();
    cached = std::make_shared<const std::vector<IndexEntry>>(std::move(entries.value()));
    // Don't install if a writer invalidated the container mid-parse: this
    // copy reflects pre-invalidation bytes.
    if (cache_.generation(container) == gen) cache_.put_log(container, path, cached);
  }
  co_return cached;
}

sim::Task<Result<IndexPtr>> Plfs::build_index_serial(pfs::IoCtx ctx, std::string logical) {
  const std::string container = path_normalize(logical);
  const std::uint64_t gen = cache_.generation(container);
  TIO_CO_ASSIGN_OR_RETURN(std::vector<IndexLogRef> logs, co_await list_index_logs(ctx, logical));
  IndexBuilder builder(mount_.index_backend);
  for (const auto& log : logs) {
    TIO_CO_ASSIGN_OR_RETURN(std::shared_ptr<const std::vector<IndexEntry>> entries,
                            co_await read_index_log(ctx, logical, log.path));
    builder.add_run(std::move(entries));
  }
  co_await engine().sleep(mount_.index_cpu_per_entry *
                          static_cast<std::int64_t>(builder.total_entries()));
  IndexPtr index = cache_.get_index(container);
  if (index == nullptr) {
    // Per-writer logs are timestamp-sorted runs; merge instead of re-sorting.
    index = builder.build();
    // Only cacheable if no writer touched the container while we aggregated.
    if (cache_.generation(container) == gen) cache_.put_index(container, index);
  }
  co_return index;
}

sim::Task<Result<IndexPtr>> Plfs::read_global_index(pfs::IoCtx ctx, const std::string& logical) {
  ContainerLayout lay = layout(logical);
  TIO_CO_ASSIGN_OR_RETURN(std::shared_ptr<const std::vector<IndexEntry>> entries,
                          co_await read_index_log(ctx, logical, lay.global_index_path()));
  // The flattened file's records are already non-overlapping; one run.
  IndexBuilder builder(mount_.index_backend);
  builder.add_run(std::move(entries));
  co_return builder.build();
}

sim::Task<Status> Plfs::write_global_index(pfs::IoCtx ctx, const std::string& logical,
                                           const IndexView& index) {
  ContainerLayout lay = layout(logical);
  cache_.invalidate(path_normalize(logical));  // cached global-index log is stale
  TIO_CO_ASSIGN_OR_RETURN(
      pfs::FileId fd, co_await fs_.open(ctx, lay.global_index_path(), OpenFlags::wr_trunc()));
  auto bytes = serialize_entries(index.to_entries());
  auto written = co_await fs_.write(ctx, fd, 0, DataView::literal(std::move(bytes)));
  TIO_CO_RETURN_IF_ERROR(co_await fs_.close(ctx, fd));
  co_return written.status();
}

sim::Task<Result<std::unique_ptr<ReadHandle>>> Plfs::open_read(pfs::IoCtx ctx,
                                                               std::string logical,
                                                               IndexPtr index) {
  ContainerLayout lay = layout(logical);
  if (index == nullptr) {
    // Original design: this reader aggregates every index log itself.
    TIO_CO_ASSIGN_OR_RETURN(index, co_await build_index_serial(ctx, logical));
  }
  co_return std::unique_ptr<ReadHandle>(
      new ReadHandle(*this, ctx, std::move(lay), std::move(index)));
}

sim::Task<Result<pfs::FileId>> ReadHandle::data_fd(std::uint32_t writer) {
  const auto it = data_fds_.find(writer);
  if (it != data_fds_.end()) co_return it->second;
  TIO_CO_ASSIGN_OR_RETURN(
      pfs::FileId fd,
      co_await plfs_->fs_.open(ctx_, layout_.data_log_path(static_cast<int>(writer)),
                               OpenFlags::ro()));
  data_fds_[writer] = fd;
  co_return fd;
}

sim::Task<Result<FragmentList>> ReadHandle::read(std::uint64_t offset, std::uint64_t len) {
  if (closed_) co_return error(Errc::bad_handle, "read on closed handle");
  FragmentList out;
  const std::uint64_t size = index_->logical_size();
  if (offset >= size) co_return out;  // EOF
  len = std::min(len, size - offset);

  std::uint64_t pos = offset;
  for (const auto& m : index_->lookup(offset, len)) {
    if (m.logical_offset > pos) {
      out.append(DataView::zeros(m.logical_offset - pos));  // unwritten gap
      pos = m.logical_offset;
    }
    TIO_CO_ASSIGN_OR_RETURN(pfs::FileId fd, co_await data_fd(m.writer));
    auto piece = co_await plfs_->fs_.read(ctx_, fd, m.physical_offset, m.length);
    if (!piece.ok()) co_return piece.status();
    if (piece->size() != m.length) {
      co_return error(Errc::io_error, "data log shorter than its index claims");
    }
    for (const auto& frag : piece->fragments()) out.append(frag);
    pos += m.length;
  }
  if (pos < offset + len) out.append(DataView::zeros(offset + len - pos));
  co_return out;
}

sim::Task<Status> ReadHandle::close() {
  if (closed_) co_return error(Errc::bad_handle, "double close");
  for (const auto& [writer, fd] : data_fds_) {
    TIO_CO_RETURN_IF_ERROR(co_await plfs_->fs_.close(ctx_, fd));
  }
  data_fds_.clear();
  closed_ = true;
  co_return Status::Ok();
}

sim::Task<Result<bool>> Plfs::is_container(pfs::IoCtx ctx, const std::string& logical) {
  ContainerLayout lay = layout(logical);
  auto st = co_await fs_.stat(ctx, lay.access_path());
  if (st.ok()) co_return true;
  if (st.status().code() == Errc::not_found) co_return false;
  co_return st.status();
}

sim::Task<Result<std::uint64_t>> Plfs::logical_size(pfs::IoCtx ctx, const std::string& logical) {
  ContainerLayout lay = layout(logical);
  auto entries = co_await fs_.readdir(ctx, lay.meta_dir());
  if (!entries.ok()) co_return entries.status();
  std::uint64_t size = 0;
  for (const auto& e : *entries) {
    std::uint32_t writer = 0;
    std::uint64_t s = 0;
    if (parse_meta_dropping_name(e.name, &writer, &s)) size = std::max(size, s);
  }
  co_return size;
}

sim::Task<Result<std::vector<pfs::DirEntry>>> Plfs::readdir(pfs::IoCtx ctx,
                                                            std::string logical_dir) {
  std::vector<pfs::DirEntry> out;
  for (const auto& backend : mount_.backends) {
    auto entries = co_await fs_.readdir(ctx, path_join(backend, logical_dir));
    if (!entries.ok()) {
      if (entries.status().code() == Errc::not_found) continue;
      co_return entries.status();
    }
    for (const auto& e : *entries) {
      if (std::any_of(out.begin(), out.end(),
                      [&](const pfs::DirEntry& seen) { return seen.name == e.name; })) {
        continue;
      }
      pfs::DirEntry entry = e;
      if (e.is_dir) {
        TIO_CO_ASSIGN_OR_RETURN(bool container,
                                co_await is_container(ctx, path_join(logical_dir, e.name)));
        if (container) entry.is_dir = false;  // containers are logical files
      }
      out.push_back(std::move(entry));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const pfs::DirEntry& a, const pfs::DirEntry& b) { return a.name < b.name; });
  co_return out;
}

sim::Task<Status> Plfs::mkdir(pfs::IoCtx ctx, std::string logical_dir) {
  for (const auto& backend : mount_.backends) {
    TIO_CO_RETURN_IF_ERROR(co_await ensure_dir(ctx, path_join(backend, logical_dir)));
  }
  co_return Status::Ok();
}

sim::Task<Status> Plfs::unlink(pfs::IoCtx ctx, const std::string& logical) {
  ContainerLayout lay = layout(logical);
  cache_.invalidate(path_normalize(logical));
  TIO_CO_ASSIGN_OR_RETURN(bool container, co_await is_container(ctx, logical));
  if (!container) co_return error(Errc::not_found, logical);
  for (std::size_t b = 0; b < mount_.backends.size(); ++b) {
    const std::string root = lay.container_on(b);
    auto entries = co_await fs_.readdir(ctx, root);
    if (!entries.ok()) {
      if (entries.status().code() == Errc::not_found) continue;
      co_return entries.status();
    }
    for (const auto& e : *entries) {
      const std::string child = path_join(root, e.name);
      if (e.is_dir) {
        auto inner = co_await fs_.readdir(ctx, child);
        if (inner.ok()) {
          for (const auto& f : *inner) {
            TIO_CO_RETURN_IF_ERROR(co_await fs_.unlink(ctx, path_join(child, f.name)));
          }
        }
        TIO_CO_RETURN_IF_ERROR(co_await fs_.rmdir(ctx, child));
      } else {
        TIO_CO_RETURN_IF_ERROR(co_await fs_.unlink(ctx, child));
      }
    }
    TIO_CO_RETURN_IF_ERROR(co_await fs_.rmdir(ctx, root));
  }
  co_return Status::Ok();
}

}  // namespace tio::plfs
