file(REMOVE_RECURSE
  "CMakeFiles/tio_workloads.dir/harness.cc.o"
  "CMakeFiles/tio_workloads.dir/harness.cc.o.d"
  "CMakeFiles/tio_workloads.dir/kernels.cc.o"
  "CMakeFiles/tio_workloads.dir/kernels.cc.o.d"
  "CMakeFiles/tio_workloads.dir/metadata.cc.o"
  "CMakeFiles/tio_workloads.dir/metadata.cc.o.d"
  "CMakeFiles/tio_workloads.dir/target.cc.o"
  "CMakeFiles/tio_workloads.dir/target.cc.o.d"
  "libtio_workloads.a"
  "libtio_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tio_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
