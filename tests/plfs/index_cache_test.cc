#include "plfs/index_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "plfs/index.h"

namespace tio::plfs {
namespace {

IndexCache::LogEntries make_log(std::size_t n, std::uint32_t writer = 0) {
  auto v = std::make_shared<std::vector<IndexEntry>>();
  std::uint64_t phys = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v->push_back(IndexEntry{i * 100, 100, phys, static_cast<std::int64_t>(i + 1), writer});
    phys += 100;
  }
  return v;
}

IndexPtr make_index(std::size_t n) {
  return std::make_shared<const FlatIndex>(FlatIndex::build(*make_log(n)));
}

TEST(IndexCache, IndexRoundTripAndStats) {
  IndexCache cache(1 << 20);
  EXPECT_EQ(cache.get_index("/a"), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  const IndexPtr idx = make_index(10);
  cache.put_index("/a", idx);
  EXPECT_EQ(cache.get_index("/a"), idx);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().bytes, idx->memory_bytes());
}

TEST(IndexCache, LogRoundTrip) {
  IndexCache cache(1 << 20);
  const auto log = make_log(8);
  cache.put_log("/a", "/vol0/log.3", log);
  EXPECT_EQ(cache.get_log("/a", "/vol0/log.3"), log);
  EXPECT_EQ(cache.get_log("/a", "/vol0/log.4"), nullptr);
  EXPECT_EQ(cache.stats().bytes, 8 * sizeof(IndexEntry));
}

TEST(IndexCache, EvictsLeastRecentlyUsedWhenOverBudget) {
  const std::uint64_t per_log = 10 * sizeof(IndexEntry);
  IndexCache cache(3 * per_log);
  cache.put_log("/a", "p0", make_log(10));
  cache.put_log("/a", "p1", make_log(10));
  cache.put_log("/a", "p2", make_log(10));
  EXPECT_EQ(cache.stats().entries, 3u);

  // Touch p0 so p1 becomes the LRU victim.
  EXPECT_NE(cache.get_log("/a", "p0"), nullptr);
  cache.put_log("/a", "p3", make_log(10));

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.get_log("/a", "p1"), nullptr);
  EXPECT_NE(cache.get_log("/a", "p0"), nullptr);
  EXPECT_NE(cache.get_log("/a", "p2"), nullptr);
  EXPECT_NE(cache.get_log("/a", "p3"), nullptr);
  EXPECT_LE(cache.stats().bytes, cache.budget_bytes());
}

TEST(IndexCache, InvalidationIsPerContainer) {
  IndexCache cache(1 << 20);
  cache.put_index("/a", make_index(4));
  cache.put_log("/a", "a-log", make_log(4));
  cache.put_index("/b", make_index(4));

  cache.invalidate("/a");
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.get_index("/a"), nullptr);
  EXPECT_EQ(cache.get_log("/a", "a-log"), nullptr);
  // The other container stays warm.
  EXPECT_NE(cache.get_index("/b"), nullptr);
}

TEST(IndexCache, GenerationBumpsOnEveryInvalidate) {
  IndexCache cache(1 << 20);
  EXPECT_EQ(cache.generation("/a"), 0u);
  cache.invalidate("/a");
  EXPECT_EQ(cache.generation("/a"), 1u);
  cache.invalidate("/a");
  cache.invalidate("/a");
  EXPECT_EQ(cache.generation("/a"), 3u);
  EXPECT_EQ(cache.generation("/b"), 0u);
}

TEST(IndexCache, OversizedEntryIsNotCached) {
  IndexCache cache(5 * sizeof(IndexEntry));
  cache.put_log("/a", "small", make_log(4));
  cache.put_log("/a", "huge", make_log(100));  // larger than the whole budget
  EXPECT_EQ(cache.get_log("/a", "huge"), nullptr);
  // It did not push the small entry out either.
  EXPECT_NE(cache.get_log("/a", "small"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(IndexCache, ZeroBudgetDisablesCaching) {
  IndexCache cache(0);
  cache.put_index("/a", make_index(4));
  cache.put_log("/a", "p", make_log(4));
  EXPECT_EQ(cache.get_index("/a"), nullptr);
  EXPECT_EQ(cache.get_log("/a", "p"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(IndexCache, ReplacingAKeyDoesNotDoubleCount) {
  IndexCache cache(1 << 20);
  cache.put_log("/a", "p", make_log(10));
  cache.put_log("/a", "p", make_log(20));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().bytes, 20 * sizeof(IndexEntry));
  EXPECT_EQ(cache.get_log("/a", "p")->size(), 20u);
}

TEST(IndexCache, ClearDropsEverythingButKeepsGenerations) {
  IndexCache cache(1 << 20);
  cache.put_index("/a", make_index(4));
  cache.invalidate("/b");
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.get_index("/a"), nullptr);
  EXPECT_EQ(cache.generation("/b"), 1u);
}

}  // namespace
}  // namespace tio::plfs
