// Figure 7: N-N metadata performance with federated metadata servers.
//
//   7a Open time (incl. creation) vs number of files: PLFS-1/3/6/9 MDS and
//      direct access. PLFS-1 is worst (container creation through a single
//      namespace); PLFS-6 and PLFS-9 beat direct access.
//   7b Close time: more MDS lowers it, but direct stays fastest (closing is
//      light; PLFS closes also write size droppings and clean openhosts).
//
// Every direct create lands in one shared directory (one MDS serializes
// inserts); PLFS hashes containers and subdirs across the federated
// namespaces.
#include "bench_util.h"

using namespace tio;
using namespace tio::workloads;

int main(int argc, char** argv) {
  FlagSet flags("fig7_metadata_nn: N-N open/close times vs file count and MDS count");
  auto* procs = flags.add_i64("procs", 128, "processes creating files");
  auto* max_files = flags.add_i64("max-files", 8192, "largest total file count");
  auto* plan_spec = bench::add_fault_plan_flag(flags);
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  const pfs::FaultPlan plan = bench::fault_plan_or_die(*plan_spec);
  const std::vector<std::size_t> mds_counts = {1, 3, 6, 9};
  const auto file_counts = bench::sweep(1024, static_cast<int>(*max_files));

  struct Cell {
    double open, close;
  };
  std::vector<std::vector<Cell>> plfs_cells(mds_counts.size());
  std::vector<Cell> direct_cells;

  for (const int files : file_counts) {
    MetaSpec spec;
    spec.files_per_proc = std::max(1, files / static_cast<int>(*procs));
    for (std::size_t i = 0; i < mds_counts.size(); ++i) {
      testbed::Rig::Options o = bench::lanl_rig(mds_counts[i]);
      o.fault_plan = plan;
      testbed::Rig rig(o);
      spec.use_plfs = true;
      const MetaResult r = run_metadata_storm(rig, static_cast<int>(*procs), spec);
      plfs_cells[i].push_back(Cell{r.open_s, r.close_s});
    }
    // Direct N-N on the same hardware as the largest federation — the
    // extra MDS cannot help because every create is in one directory.
    testbed::Rig::Options o = bench::lanl_rig(mds_counts.back());
    o.fault_plan = plan;
    testbed::Rig rig(o);
    spec.use_plfs = false;
    const MetaResult r = run_metadata_storm(rig, static_cast<int>(*procs), spec);
    direct_cells.push_back(Cell{r.open_s, r.close_s});
  }

  bench::print_header("Fig. 7a — N-N Open Time (s, includes creation)",
                      "PLFS-6/PLFS-9 beat direct; PLFS-1 worst");
  Table a({"files", "PLFS-1", "PLFS-3", "PLFS-6", "PLFS-9", "W/O PLFS"});
  for (std::size_t f = 0; f < file_counts.size(); ++f) {
    a.add_row({std::to_string(file_counts[f]), Table::num(plfs_cells[0][f].open, 3),
               Table::num(plfs_cells[1][f].open, 3), Table::num(plfs_cells[2][f].open, 3),
               Table::num(plfs_cells[3][f].open, 3), Table::num(direct_cells[f].open, 3)});
  }
  a.print(std::cout);

  bench::print_header("Fig. 7b — N-N Close Time (s)",
                      "more MDS helps PLFS, but direct close stays fastest");
  Table b({"files", "PLFS-1", "PLFS-3", "PLFS-6", "PLFS-9", "W/O PLFS"});
  for (std::size_t f = 0; f < file_counts.size(); ++f) {
    b.add_row({std::to_string(file_counts[f]), Table::num(plfs_cells[0][f].close, 3),
               Table::num(plfs_cells[1][f].close, 3), Table::num(plfs_cells[2][f].close, 3),
               Table::num(plfs_cells[3][f].close, 3), Table::num(direct_cells[f].close, 3)});
  }
  b.print(std::cout);
  bench::print_fault_counters();
  bench::print_sim_counters();
  return 0;
}
