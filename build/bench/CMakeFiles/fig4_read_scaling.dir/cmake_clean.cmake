file(REMOVE_RECURSE
  "CMakeFiles/fig4_read_scaling.dir/fig4_read_scaling.cc.o"
  "CMakeFiles/fig4_read_scaling.dir/fig4_read_scaling.cc.o.d"
  "fig4_read_scaling"
  "fig4_read_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_read_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
