// Common vocabulary types for file-system clients.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace tio::pfs {

// Identifies a file's backing object; never reused within a file system.
using ObjectId = std::uint64_t;
// An open-file handle id, per client instance.
using FileId = std::uint64_t;

inline constexpr ObjectId kNoObject = 0;

// Identifies the issuing process for cost accounting (node placement for
// caches/NICs) and lock ownership.
struct IoCtx {
  std::size_t node = 0;
  int rank = 0;
};

struct OpenFlags {
  bool read = false;
  bool write = false;
  bool create = false;
  bool trunc = false;
  bool excl = false;

  static OpenFlags ro() { return {.read = true}; }
  static OpenFlags wr() { return {.write = true}; }
  static OpenFlags rdwr() { return {.read = true, .write = true}; }
  // Typical log-file creation: write, create if absent, fail if present.
  static OpenFlags wr_create() { return {.write = true, .create = true}; }
  static OpenFlags wr_create_excl() { return {.write = true, .create = true, .excl = true}; }
  static OpenFlags wr_trunc() { return {.write = true, .create = true, .trunc = true}; }
};

struct StatInfo {
  bool is_dir = false;
  std::uint64_t size = 0;
  TimePoint mtime;
};

struct DirEntry {
  std::string name;
  bool is_dir = false;
  friend bool operator==(const DirEntry&, const DirEntry&) = default;
};

}  // namespace tio::pfs
