# Empty compiler generated dependencies file for tio_sim.
# This may be replaced when dependencies are built.
