// Discrete-event simulation engine.
//
// The engine owns a virtual clock and a (time, sequence)-ordered event
// queue; ties are broken by insertion order, so runs are bit-reproducible.
// Simulated processes are Task<void> coroutines spawned on the engine; they
// advance the clock only by awaiting timers, resources, and channels.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "common/function.h"
#include "common/rng.h"
#include "common/units.h"
#include "sim/task.h"

namespace tio::sim {

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 0x5eed) : rng_(seed) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  TimePoint now() const { return now_; }

  // Schedules `fn` at absolute time `t` (>= now).
  void at(TimePoint t, MoveFn<void()> fn);
  void after(Duration d, MoveFn<void()> fn) { at(now_ + clamp(d), std::move(fn)); }

  // Awaitable timer: co_await engine.sleep(d).
  struct SleepAwaiter {
    Engine* engine;
    Duration d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      engine->after(d, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  SleepAwaiter sleep(Duration d) { return SleepAwaiter{this, d}; }

  // Reschedules the caller at the current time, behind already-queued events
  // (a fairness yield).
  SleepAwaiter yield() { return SleepAwaiter{this, Duration::zero()}; }

  // Starts a detached process. The coroutine frame is owned by the engine
  // and released when the process finishes. Start happens via the event
  // queue at the current time.
  void spawn(Task<void> process);

  // Runs until the event queue is empty. Throws if a detached process threw.
  // Returns the number of events processed.
  std::uint64_t run();
  // Processes a single event; returns false when the queue is empty.
  bool step();

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t processes_alive() const { return processes_alive_; }

  Rng& rng() { return rng_; }
  Rng fork_rng(std::uint64_t stream) const { return rng_.fork(stream); }

  // Internal: called by the detached-process driver.
  void notify_process_finished() { --processes_alive_; }
  void record_process_error(std::exception_ptr e) {
    if (!process_error_) process_error_ = std::move(e);
  }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    MoveFn<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  static Duration clamp(Duration d) { return d < Duration::zero() ? Duration::zero() : d; }

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TimePoint now_;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t processes_alive_ = 0;
  std::exception_ptr process_error_;
  Rng rng_;
};

}  // namespace tio::sim
