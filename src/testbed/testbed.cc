#include "testbed/testbed.h"

#include <stdexcept>

namespace tio::testbed {

net::ClusterConfig lanl_cluster() {
  net::ClusterConfig c;
  c.nodes = 64;
  c.cores_per_node = 16;
  c.memory_per_node = 32_GiB;
  c.nic_bandwidth = 2.0e9;             // IB DDR-class per node
  c.fabric_latency = Duration::us(2);
  c.storage_net_bandwidth = 1.25e9;    // the paper's quoted theoretical peak
  c.storage_nic_bandwidth = 1.15e9;    // one node can nearly saturate it
  c.storage_net_latency = Duration::us(60);
  c.page_cache_per_node = 128_MiB;     // PanFS-client-like per-mount file cache
  c.page_cache_block = 64_KiB;         // page-cache/readahead granularity
  c.page_cache_bandwidth = 4.0e9;
  return c;
}

pfs::PfsConfig lanl_pfs(std::size_t num_mds) {
  pfs::PfsConfig c;
  c.num_mds = num_mds;
  c.mds_concurrency = 4;
  c.num_osts = 20;                     // 551 TB of shelves behind 1.25 GB/s
  c.ost_bandwidth = 350e6;
  c.ost_seek_time = Duration::ms(4);
  c.ost_switch_time = Duration::ms(1);
  c.stripe_unit = 64_KiB;
  c.lock_range = 1_MiB;
  c.lock_transfer_time = Duration::ms(1);
  return c;
}

net::ClusterConfig cielo() {
  net::ClusterConfig c;
  c.nodes = 4096;                      // the slice hosting 65,536 processes
  c.cores_per_node = 16;
  c.memory_per_node = 32_GiB;
  c.nic_bandwidth = 4.0e9;             // Gemini class
  c.fabric_latency = Duration::us(2);
  c.storage_net_bandwidth = 80e9;      // 10 PB PanFS, ~80 GB/s aggregate
  c.storage_nic_bandwidth = 1.25e9;
  c.storage_net_latency = Duration::us(60);
  c.page_cache_per_node = 128_MiB;     // PanFS-client-like per-mount file cache
  c.page_cache_block = 1_MiB;          // coarser blocks keep 65k-rank runs cheap
  c.page_cache_bandwidth = 4.0e9;
  return c;
}

pfs::PfsConfig cielo_pfs(std::size_t num_mds) {
  pfs::PfsConfig c;
  c.num_mds = num_mds;
  c.mds_concurrency = 4;
  c.num_osts = 400;
  c.ost_bandwidth = 350e6;
  c.ost_seek_time = Duration::ms(4);
  c.ost_switch_time = Duration::ms(1);
  c.stripe_unit = 64_KiB;
  c.lock_range = 1_MiB;
  c.lock_transfer_time = Duration::ms(1);
  return c;
}

plfs::PlfsMount plfs_mount(std::size_t backends, std::size_t num_subdirs) {
  if (backends == 0) throw std::invalid_argument("plfs_mount: need at least one backend");
  plfs::PlfsMount m;
  for (std::size_t i = 0; i < backends; ++i) {
    m.backends.push_back("/vol" + std::to_string(i) + "/plfs");
  }
  m.num_subdirs = num_subdirs;
  m.spread_containers = backends > 1;
  m.spread_subdirs = backends > 1;
  return m;
}

namespace {
// Replica r of group g lands on node (g + r*groups) % nodes: distinct nodes
// per group whenever the cluster is big enough, leaders scattered across
// groups.
std::vector<std::vector<std::size_t>> spread_replicas(std::size_t groups,
                                                      std::size_t replicas,
                                                      std::size_t nodes) {
  std::vector<std::vector<std::size_t>> placement(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t r = 0; r < replicas; ++r) {
      placement[g].push_back((g + r * groups) % nodes);
    }
  }
  return placement;
}
}  // namespace

Rig::Rig(Options options)
    : engine_(options.seed),
      cluster_(std::make_unique<net::Cluster>(engine_, options.cluster)) {
  const bool replicated = options.pfs.mds_replication == pfs::MdsReplication::raft;
  if (replicated && options.pfs.raft_placement.empty()) {
    options.pfs.raft_placement =
        spread_replicas(options.pfs.num_mds, options.pfs.mds_replicas, options.cluster.nodes);
  }
  pfs_ = std::make_unique<pfs::SimPfs>(*cluster_, options.pfs);
  const std::size_t backends =
      options.plfs_backends > 0 ? options.plfs_backends : options.pfs.num_mds;
  mount_ = plfs_mount(backends, options.num_subdirs);
  mount_.index_backend = options.index_backend;
  mount_.index_wire = options.index_wire;
  mount_.retry = options.retry;
  mount_.mds_replicated = replicated;
  mount_.meta_batching = options.pfs.mds_batch > 0;
  // One plan spec drives both replication modes: server-targeted faults
  // run against the replica groups when they exist, and lower to
  // path-prefix outages of the victim namespace when they don't.
  const pfs::FaultPlan plan =
      replicated ? options.fault_plan : options.fault_plan.lowered_for_unreplicated();
  if (replicated) pfs_->schedule_server_faults(plan);
  if (plan.enabled()) {
    faulty_ = std::make_unique<pfs::FaultyFs>(*pfs_, plan);
  }
  plfs_ = std::make_unique<plfs::Plfs>(fs(), mount_);
  // Pre-create ("mount") the volume roots plus the direct-access dir.
  for (const auto& b : mount_.backends) {
    if (!pfs_->ns().mkdir_all(b).ok()) throw std::runtime_error("mount failed: " + b);
  }
  if (!pfs_->ns().mkdir_all(direct_dir()).ok()) {
    throw std::runtime_error("mount failed: direct dir");
  }
}

}  // namespace tio::testbed
