// Figure 8: large-scale validation on the Cielo testbed.
//
//   8a Read bandwidth up to 65,536 processes: N-N direct, N-N PLFS, and
//      N-1 PLFS (Parallel Index Read, 10 federated MDS). N-1 through PLFS
//      tracks or exceeds direct N-N.
//   8b Large N-N write-open time: PLFS-1 vs PLFS-10 vs PLFS-20.
//   8c Large N-1 write-open time: PLFS-1 vs PLFS-10 (container/subdir
//      creation burst; federation matters as process count grows).
//   8d N-N open time, PLFS-10 vs direct: paper reports a 17x speedup at
//      32,768 processes.
#include "bench_util.h"

using namespace tio;
using namespace tio::workloads;

int main(int argc, char** argv) {
  std::setlocale(LC_ALL, "");  // stdout tables honor the user's locale; JSON must not
  FlagSet flags("fig8_large_scale: Cielo-scale read and metadata results");
  auto* max_read_procs = flags.add_i64("max-read-procs", 65536, "largest read job (fig 8a)");
  auto* max_meta_procs = flags.add_i64("max-meta-procs", 32768, "largest storm (figs 8b-d)");
  auto* per_proc_mib = flags.add_i64("per-proc-mib", 4, "MiB per process for fig 8a");
  auto* backend_name = bench::add_index_backend_flag(flags);
  auto* wire_name = bench::add_index_wire_flag(flags);
  auto* plan_spec = bench::add_fault_plan_flag(flags);
  auto* json_path = flags.add_string("json", "", "also write results to this file as JSON");
  auto* trace_path = bench::add_trace_flag(flags);
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  bench::start_trace(*trace_path);
  const std::uint64_t per_proc = static_cast<std::uint64_t>(*per_proc_mib) << 20;
  const std::uint64_t record = 256_KiB;
  const plfs::IndexBackend backend = bench::index_backend_or_die(*backend_name);
  const plfs::WireFormat wire = bench::index_wire_or_die(*wire_name);
  const pfs::FaultPlan plan = bench::fault_plan_or_die(*plan_spec);

  struct ReadRow {
    int procs;
    double nn_direct, nn_plfs, n1_plfs;
  };
  struct StormRow {
    int procs;
    std::vector<double> open_s;  // one entry per MDS-count column
  };
  std::vector<ReadRow> read_rows;
  std::vector<StormRow> nn_rows, n1_rows;
  struct DirectRow {
    int procs;
    double direct_s, plfs_s;
  };
  std::vector<DirectRow> direct_rows;

  // --- 8a: read bandwidth ---
  bench::print_header("Fig. 8a — Large-Scale Read Bandwidth (MB/s)",
                      "N-1 PLFS close to / above direct N-N across process counts");
  {
    Table t({"procs", "N-N w/o PLFS", "N-N PLFS", "N-1 PLFS"});
    for (const int n : bench::sweep(4096, static_cast<int>(*max_read_procs))) {
      auto bw = [&](Access access, const OpGen& ops) {
        testbed::Rig::Options opts = bench::cielo_rig(10);
        opts.index_backend = backend;
        opts.index_wire = wire;
        opts.fault_plan = plan;
        testbed::Rig rig(std::move(opts));
        JobSpec spec;
        spec.file = "big";
        spec.ops = ops;
        spec.target.access = access;
        spec.target.strategy = plfs::ReadStrategy::parallel_read;
        spec.drop_caches_before_read = true;
        return run_job(rig, n, spec).read.effective_bw();
      };
      const double nn_direct = bw(Access::direct_nn, segmented_ops(per_proc, record));
      const double nn_plfs = bw(Access::plfs_nn, segmented_ops(per_proc, record));
      const double n1_plfs = bw(Access::plfs_n1, strided_ops(per_proc, record));
      read_rows.push_back({n, nn_direct, nn_plfs, n1_plfs});
      t.add_row({std::to_string(n), Table::num(bench::mbps(nn_direct)),
                 Table::num(bench::mbps(nn_plfs)), Table::num(bench::mbps(n1_plfs))});
    }
    t.print(std::cout);
  }

  const auto storm_procs = bench::sweep(4096, static_cast<int>(*max_meta_procs));

  // --- 8b: N-N open storm across MDS counts ---
  bench::print_header("Fig. 8b — Large N-N Open Time (s)",
                      "PLFS-1 poor; PLFS-10 dramatically better");
  {
    Table t({"procs", "PLFS-1", "PLFS-10", "PLFS-20"});
    for (const int n : storm_procs) {
      std::vector<std::string> row = {std::to_string(n)};
      StormRow jrow{n, {}};
      for (const std::size_t mds : {std::size_t{1}, std::size_t{10}, std::size_t{20}}) {
        testbed::Rig::Options opts = bench::cielo_rig(mds);
        opts.fault_plan = plan;
        testbed::Rig rig(std::move(opts));
        MetaSpec spec;
        spec.use_plfs = true;
        const double open_s = run_metadata_storm(rig, n, spec).open_s;
        jrow.open_s.push_back(open_s);
        row.push_back(Table::num(open_s, 2));
      }
      nn_rows.push_back(std::move(jrow));
      t.add_row(row);
    }
    t.print(std::cout);
  }

  // --- 8c: N-1 open storm (shared container) ---
  bench::print_header("Fig. 8c — Large N-1 Open Time (s)",
                      "similar at small scale; PLFS-10 wins as procs grow");
  {
    Table t({"procs", "PLFS-1", "PLFS-10"});
    for (const int n : storm_procs) {
      std::vector<std::string> row = {std::to_string(n)};
      StormRow jrow{n, {}};
      for (const std::size_t mds : {std::size_t{1}, std::size_t{10}}) {
        testbed::Rig::Options opts = bench::cielo_rig(mds);
        opts.fault_plan = plan;
        testbed::Rig rig(std::move(opts));
        MetaSpec spec;
        spec.use_plfs = true;
        spec.shared_file = true;
        const double open_s = run_metadata_storm(rig, n, spec).open_s;
        jrow.open_s.push_back(open_s);
        row.push_back(Table::num(open_s, 2));
      }
      n1_rows.push_back(std::move(jrow));
      t.add_row(row);
    }
    t.print(std::cout);
  }

  // --- 8d: PLFS-10 vs direct ---
  bench::print_header("Fig. 8d — N-N Open Time, PLFS-10 vs W/O PLFS (s)",
                      "paper: up to 17x faster with PLFS at 32,768 processes");
  {
    Table t({"procs", "W/O PLFS", "PLFS-10", "speedup"});
    for (const int n : storm_procs) {
      MetaSpec spec;
      testbed::Rig::Options opts_direct = bench::cielo_rig(10);
      opts_direct.fault_plan = plan;
      testbed::Rig rig_direct(std::move(opts_direct));
      spec.use_plfs = false;
      const double direct = run_metadata_storm(rig_direct, n, spec).open_s;
      testbed::Rig::Options opts_plfs = bench::cielo_rig(10);
      opts_plfs.fault_plan = plan;
      testbed::Rig rig_plfs(std::move(opts_plfs));
      spec.use_plfs = true;
      const double plfs = run_metadata_storm(rig_plfs, n, spec).open_s;
      direct_rows.push_back({n, direct, plfs});
      t.add_row({std::to_string(n), Table::num(direct, 2), Table::num(plfs, 2),
                 Table::num(direct / plfs, 1) + "x"});
    }
    t.print(std::cout);
  }

  if (!json_path->empty()) {
    std::FILE* f = std::fopen(json_path->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open --json file: %s\n", json_path->c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig8_large_scale\",\n");
    std::fprintf(f,
                 "  \"config\": {\"max_read_procs\": %lld, \"max_meta_procs\": %lld, "
                 "\"per_proc_mib\": %lld, \"index_backend\": \"%s\", \"index_wire\": \"%s\", "
                 "\"fault_plan\": \"%s\"},\n",
                 static_cast<long long>(*max_read_procs), static_cast<long long>(*max_meta_procs),
                 static_cast<long long>(*per_proc_mib), plfs::index_backend_name(backend).c_str(),
                 plfs::wire_format_name(wire).c_str(), plan_spec->c_str());
    std::fprintf(f, "  \"fig8a_read_bw_mbps\": [");
    for (std::size_t i = 0; i < read_rows.size(); ++i) {
      const auto& r = read_rows[i];
      std::fprintf(f,
                   "%s\n    {\"procs\": %d, \"nn_direct\": %s, \"nn_plfs\": %s, "
                   "\"n1_plfs\": %s}",
                   i ? "," : "", r.procs, json_double(bench::mbps(r.nn_direct), 3).c_str(),
                   json_double(bench::mbps(r.nn_plfs), 3).c_str(),
                   json_double(bench::mbps(r.n1_plfs), 3).c_str());
    }
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f, "  \"fig8b_nn_open_s\": [");
    for (std::size_t i = 0; i < nn_rows.size(); ++i) {
      const auto& r = nn_rows[i];
      std::fprintf(f,
                   "%s\n    {\"procs\": %d, \"plfs1\": %s, \"plfs10\": %s, \"plfs20\": %s}",
                   i ? "," : "", r.procs, json_double(r.open_s[0], 6).c_str(),
                   json_double(r.open_s[1], 6).c_str(), json_double(r.open_s[2], 6).c_str());
    }
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f, "  \"fig8c_n1_open_s\": [");
    for (std::size_t i = 0; i < n1_rows.size(); ++i) {
      const auto& r = n1_rows[i];
      std::fprintf(f, "%s\n    {\"procs\": %d, \"plfs1\": %s, \"plfs10\": %s}", i ? "," : "",
                   r.procs, json_double(r.open_s[0], 6).c_str(),
                   json_double(r.open_s[1], 6).c_str());
    }
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f, "  \"fig8d_nn_open_s\": [");
    for (std::size_t i = 0; i < direct_rows.size(); ++i) {
      const auto& r = direct_rows[i];
      std::fprintf(f, "%s\n    {\"procs\": %d, \"direct\": %s, \"plfs10\": %s}", i ? "," : "",
                   r.procs, json_double(r.direct_s, 6).c_str(), json_double(r.plfs_s, 6).c_str());
    }
    std::fprintf(f, "\n  ],\n");
    bench::json_counters(f);
    bench::json_histograms(f);
    std::fprintf(f, "  \"schema\": 2\n}\n");
    std::fclose(f);
  }

  bench::finish_trace(*trace_path);
  bench::print_fault_counters();
  bench::print_index_counters();
  bench::print_histograms();
  bench::print_sim_counters();
  return 0;
}
