#include "mpisim/comm.h"

#include <gtest/gtest.h>

#include <numeric>

#include "mpisim/runtime.h"

namespace tio::mpi {
namespace {

net::ClusterConfig test_cluster() {
  net::ClusterConfig c;
  c.nodes = 8;
  c.cores_per_node = 4;
  return c;
}

// Runs `fn` as an SPMD job of `n` ranks on a fresh cluster.
void spmd(int n, const std::function<sim::Task<void>(Comm)>& fn) {
  sim::Engine engine;
  net::Cluster cluster(engine, test_cluster());
  run_spmd(cluster, n, fn);
}

TEST(Runtime, BlockPlacement) {
  sim::Engine engine;
  net::Cluster cluster(engine, test_cluster());
  Runtime rt(cluster, 32);
  EXPECT_EQ(rt.node_of(0), 0u);
  EXPECT_EQ(rt.node_of(3), 0u);
  EXPECT_EQ(rt.node_of(4), 1u);
  EXPECT_EQ(rt.node_of(31), 7u);
  // Oversubscription wraps.
  Runtime big(cluster, 64);
  EXPECT_EQ(big.node_of(32), 0u);
}

TEST(Runtime, InvalidSizeThrows) {
  sim::Engine engine;
  net::Cluster cluster(engine, test_cluster());
  EXPECT_THROW(Runtime(cluster, 0), std::invalid_argument);
}

TEST(Comm, SendRecvDeliversPayloadAndTakesTime) {
  sim::Engine engine;
  net::Cluster cluster(engine, test_cluster());
  std::string got;
  run_spmd(cluster, 8, [&got](Comm comm) -> sim::Task<void> {
    if (comm.rank() == 0) {
      co_await comm.send(7, 42, std::string("payload"), 1_MiB);
    } else if (comm.rank() == 7) {
      got = co_await comm.recv<std::string>(0, 42);
    }
  });
  EXPECT_EQ(got, "payload");
  EXPECT_GT(engine.now().to_ns(), Duration::us(500).to_ns());  // 1 MiB over 2 GB/s NICs
}

TEST(Comm, MessagesMatchBySourceAndTag) {
  std::vector<int> got(2, -1);
  spmd(3, [&got](Comm comm) -> sim::Task<void> {
    if (comm.rank() == 1) co_await comm.send(0, 5, 100, 8);
    if (comm.rank() == 2) co_await comm.send(0, 6, 200, 8);
    if (comm.rank() == 0) {
      // Receive in the opposite order of arrival likelihood.
      got[1] = co_await comm.recv<int>(2, 6);
      got[0] = co_await comm.recv<int>(1, 5);
    }
  });
  EXPECT_EQ(got[0], 100);
  EXPECT_EQ(got[1], 200);
}

class CommSizes : public ::testing::TestWithParam<int> {};

TEST_P(CommSizes, BcastReachesAllRanks) {
  const int n = GetParam();
  std::vector<int> got(n, -1);
  spmd(n, [&got](Comm comm) -> sim::Task<void> {
    const int root = comm.size() > 2 ? 2 : 0;
    const int value = comm.rank() == root ? 777 : -1;
    got[comm.rank()] = co_await comm.bcast(root, value, 64);
  });
  for (int r = 0; r < n; ++r) EXPECT_EQ(got[r], 777) << "rank " << r;
}

TEST_P(CommSizes, GatherCollectsInRankOrder) {
  const int n = GetParam();
  std::vector<int> result;
  spmd(n, [&result](Comm comm) -> sim::Task<void> {
    const int root = comm.size() - 1;
    auto v = co_await comm.gather(root, comm.rank() * 10, 8);
    if (comm.rank() == root) {
      result = std::move(v);
    } else {
      EXPECT_TRUE(v.empty());
    }
  });
  ASSERT_EQ(result.size(), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) EXPECT_EQ(result[r], r * 10);
}

TEST_P(CommSizes, AllgatherGivesEveryoneEverything) {
  const int n = GetParam();
  std::vector<std::vector<int>> results(n);
  spmd(n, [&results](Comm comm) -> sim::Task<void> {
    results[comm.rank()] = co_await comm.allgather(comm.rank() + 1, 8);
  });
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(results[r].size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) EXPECT_EQ(results[r][i], i + 1);
  }
}

TEST_P(CommSizes, ReduceSums) {
  const int n = GetParam();
  int result = -1;
  spmd(n, [&result](Comm comm) -> sim::Task<void> {
    const int sum =
        co_await comm.reduce(0, comm.rank() + 1, 8, [](int a, int b) { return a + b; });
    if (comm.rank() == 0) result = sum;
  });
  EXPECT_EQ(result, n * (n + 1) / 2);
}

TEST_P(CommSizes, AllreduceMax) {
  const int n = GetParam();
  std::vector<int> results(n, -1);
  spmd(n, [&results](Comm comm) -> sim::Task<void> {
    results[comm.rank()] = co_await comm.allreduce(
        comm.rank() * 3 + 1, 8, [](int a, int b) { return a > b ? a : b; });
  });
  for (int r = 0; r < n; ++r) EXPECT_EQ(results[r], (n - 1) * 3 + 1);
}

TEST_P(CommSizes, AlltoallTransposes) {
  const int n = GetParam();
  std::vector<std::vector<int>> results(n);
  spmd(n, [&results](Comm comm) -> sim::Task<void> {
    std::vector<int> to_send(comm.size());
    for (int i = 0; i < comm.size(); ++i) to_send[i] = comm.rank() * 100 + i;
    results[comm.rank()] = co_await comm.alltoall(std::move(to_send), 8);
  });
  for (int r = 0; r < n; ++r) {
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(results[r][i], i * 100 + r);  // from rank i, slot r
    }
  }
}

TEST_P(CommSizes, BarrierSynchronizesArrivalTimes) {
  const int n = GetParam();
  std::vector<std::int64_t> exit_ns(n, 0);
  sim::Engine engine;
  net::Cluster cluster(engine, test_cluster());
  run_spmd(cluster, n, [&exit_ns](Comm comm) -> sim::Task<void> {
    // Stagger arrivals; everyone leaves only after the slowest arrives.
    co_await comm.engine().sleep(Duration::ms(comm.rank()));
    co_await comm.barrier();
    exit_ns[comm.rank()] = comm.engine().now().to_ns();
  });
  const auto last_arrival = Duration::ms(n - 1).to_ns();
  for (int r = 0; r < n; ++r) EXPECT_GE(exit_ns[r], last_arrival);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CommSizes, ::testing::Values(1, 2, 3, 5, 8, 13, 16, 33));

TEST(Comm, SplitFormsCorrectGroups) {
  const int n = 12;
  std::vector<int> sub_rank(n, -1), sub_size(n, -1);
  spmd(n, [&sub_rank, &sub_size](Comm comm) -> sim::Task<void> {
    // Groups of 4 consecutive ranks.
    Comm sub = co_await comm.split(comm.rank() / 4, comm.rank());
    sub_rank[comm.rank()] = sub.rank();
    sub_size[comm.rank()] = sub.size();
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(sub_size[r], 4);
    EXPECT_EQ(sub_rank[r], r % 4);
  }
}

TEST(Comm, SplitSubcommCollectivesWork) {
  const int n = 8;
  std::vector<int> results(n, -1);
  spmd(n, [&results](Comm comm) -> sim::Task<void> {
    Comm sub = co_await comm.split(comm.rank() % 2, comm.rank());
    // Leader of each parity group broadcasts its world rank.
    const int value = sub.rank() == 0 ? comm.rank() : -1;
    results[comm.rank()] = co_await sub.bcast(0, value, 8);
  });
  for (int r = 0; r < n; ++r) EXPECT_EQ(results[r], r % 2);
}

TEST(Comm, SplitWithReversedKeysReversesOrder) {
  const int n = 6;
  std::vector<int> sub_rank(n, -1);
  spmd(n, [&sub_rank](Comm comm) -> sim::Task<void> {
    Comm sub = co_await comm.split(0, -comm.rank());
    sub_rank[comm.rank()] = sub.rank();
  });
  for (int r = 0; r < n; ++r) EXPECT_EQ(sub_rank[r], n - 1 - r);
}

TEST(Comm, CollectiveTimesScaleLogarithmically) {
  auto time_bcast = [](int n) {
    sim::Engine engine;
    net::ClusterConfig cfg = test_cluster();
    cfg.nodes = 256;
    cfg.cores_per_node = 1;
    net::Cluster cluster(engine, cfg);
    run_spmd(cluster, n, [](Comm comm) -> sim::Task<void> {
      (void)co_await comm.bcast(0, 1, 1_MiB);
    });
    return engine.now().to_seconds();
  };
  const double t16 = time_bcast(16);
  const double t256 = time_bcast(256);
  // Binomial: 4 rounds vs 8 rounds, not 16 vs 256.
  EXPECT_LT(t256, t16 * 4);
  EXPECT_GT(t256, t16);
}

TEST(Comm, ManySiblingSubcommunicatorsDoNotCrossTalk) {
  // Regression: with 128+ group colors plus a leaders split (the Parallel
  // Index Read pattern), the old context hash collided between sibling
  // subcomms and a bcast delivered a payload of the wrong type.
  spmd(256, [](Comm comm) -> sim::Task<void> {
    Comm group = co_await comm.split(comm.rank() / 2, comm.rank());
    Comm leaders = co_await comm.split(group.rank() == 0 ? 0 : 1, comm.rank());
    if (group.rank() == 0) {
      auto gathered = co_await leaders.allgather(std::vector<int>(1, comm.rank()), 8);
      EXPECT_EQ(gathered.size(), 128u);
    }
    const auto x = co_await group.bcast(0, std::uint64_t{7}, 8);
    EXPECT_EQ(x, 7u);
    // A second, differently-typed broadcast on the same comm. (No braced
    // init lists here: GCC 12 cannot materialize initializer_list arrays in
    // coroutine frames.)
    const std::vector<int> probe(3, comm.rank() / 2);
    const auto y = co_await group.bcast(0, probe, 16);
    EXPECT_EQ(y, probe);
  });
}

TEST(Comm, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Engine engine;
    net::Cluster cluster(engine, test_cluster());
    run_spmd(cluster, 16, [](Comm comm) -> sim::Task<void> {
      auto all = co_await comm.allgather(comm.rank(), 64);
      (void)co_await comm.reduce(0, static_cast<int>(all.size()), 8,
                                 [](int a, int b) { return a + b; });
      co_await comm.barrier();
    });
    return std::make_pair(engine.now().to_ns(), engine.events_processed());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Comm, ReservedTagIsRejected) {
  // Tasks are lazy: validation throws surface when the task is awaited.
  spmd(2, [](Comm comm) -> sim::Task<void> {
    if (comm.rank() == 0) {
      bool threw = false;
      try {
        co_await comm.send(1, 1 << 21, 0, 8);
      } catch (const std::invalid_argument&) {
        threw = true;
      }
      EXPECT_TRUE(threw);
    }
  });
}

TEST(Comm, BadRankThrows) {
  spmd(2, [](Comm comm) -> sim::Task<void> {
    bool threw = false;
    try {
      (void)co_await comm.bcast(5, 0, 8);
    } catch (const std::out_of_range&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  });
}

}  // namespace
}  // namespace tio::mpi
