// Flat d-ary min-heap (default 4-ary).
//
// Versus std::priority_queue's binary heap, a 4-ary heap halves the tree
// depth, so sift-down touches half as many cache lines — the right trade
// for the simulator's event queue and the fair-share completion heap, where
// pops dominate and elements are small (an index or a 24-byte flow record).
// `pop_top` moves the minimum out, avoiding the const_cast dance that
// priority_queue::top() forces on move-only elements.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace tio {

template <typename T, typename Less, std::size_t D = 4>
class DaryHeap {
  static_assert(D >= 2, "DaryHeap: arity must be at least 2");

 public:
  DaryHeap() = default;
  explicit DaryHeap(Less less) : less_(std::move(less)) {}

  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  void reserve(std::size_t n) { v_.reserve(n); }
  const T& top() const { return v_.front(); }

  void push(T x) {
    v_.push_back(std::move(x));
    sift_up(v_.size() - 1);
  }

  // Moves the minimum into `out` and restores the heap.
  void pop_top(T& out) {
    out = std::move(v_.front());
    T last = std::move(v_.back());
    v_.pop_back();
    if (!v_.empty()) sift_down(std::move(last));
  }

  void pop() {
    T last = std::move(v_.back());
    v_.pop_back();
    if (!v_.empty()) sift_down(std::move(last));
  }

  void clear() { v_.clear(); }

 private:
  void sift_up(std::size_t i) {
    T x = std::move(v_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / D;
      if (!less_(x, v_[parent])) break;
      v_[i] = std::move(v_[parent]);
      i = parent;
    }
    v_[i] = std::move(x);
  }

  // Sifts `x` down from the root into its final slot.
  void sift_down(T x) {
    const std::size_t n = v_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = i * D + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + D < n ? first + D : n;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (less_(v_[c], v_[best])) best = c;
      }
      if (!less_(v_[best], x)) break;
      v_[i] = std::move(v_[best]);
      i = best;
    }
    v_[i] = std::move(x);
  }

  std::vector<T> v_;
  [[no_unique_address]] Less less_;
};

}  // namespace tio
