#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace tio {

namespace {

thread_local unsigned t_stat_shard = 0;

// Shared nearest-rank index computation: for n samples and p in [0, 100],
// the nearest-rank of p is ceil(p/100 * n) (1-based), clamped to [1, n] so
// p = 0 picks the first sorted sample and p = 100 the last — exact for
// every n including n = 1.
std::size_t nearest_rank_index(double p, std::size_t n) {
  const double clamped = std::clamp(p, 0.0, 100.0);
  auto rank = static_cast<std::size_t>(std::ceil(clamped / 100.0 * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return rank - 1;
}

}  // namespace

void set_stat_shard(unsigned shard) {
  if (shard >= kMaxStatShards) {
    throw std::invalid_argument("set_stat_shard: shard id out of range");
  }
  t_stat_shard = shard;
}

unsigned stat_shard() { return t_stat_shard; }

double Series::sum() const {
  double s = 0;
  for (double x : xs_) s += x;
  return s;
}

double Series::mean() const {
  if (xs_.empty()) throw std::logic_error("Series::mean on empty series");
  return sum() / static_cast<double>(xs_.size());
}

double Series::stddev() const {
  if (xs_.size() < 2) return 0.0;
  // One pass for the sum (not mean(), which would re-walk the sample),
  // one for the squared deviations.
  double s = 0;
  for (double x : xs_) s += x;
  const double m = s / static_cast<double>(xs_.size());
  double acc = 0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs_.size() - 1));
}

double Series::min() const {
  if (xs_.empty()) throw std::logic_error("Series::min on empty series");
  return *std::min_element(xs_.begin(), xs_.end());
}

double Series::max() const {
  if (xs_.empty()) throw std::logic_error("Series::max on empty series");
  return *std::max_element(xs_.begin(), xs_.end());
}

double Series::percentile(double p) const {
  if (xs_.empty()) throw std::logic_error("Series::percentile on empty series");
  if (!sorted_) {
    sorted_cache_ = xs_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    sorted_ = true;
  }
  return sorted_cache_[nearest_rank_index(p, sorted_cache_.size())];
}

std::size_t Counter::slot() { return t_stat_shard % kSlots; }

// One shard's private accumulation. Only its owning thread writes it;
// readers merge cells while writers are quiescent.
struct Histogram::Cell {
  std::vector<std::int64_t> samples;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::int64_t sum = 0;
};

Histogram::~Histogram() {
  for (auto& slot : cells_) delete slot.load(std::memory_order_relaxed);
}

Histogram::Cell& Histogram::local_cell() {
  const unsigned shard = t_stat_shard;
  Cell* c = cells_[shard].load(std::memory_order_acquire);
  if (c == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    c = cells_[shard].load(std::memory_order_relaxed);
    if (c == nullptr) {
      c = new Cell();
      cells_[shard].store(c, std::memory_order_release);
    }
  }
  return *c;
}

void Histogram::record(std::int64_t v) {
  if (v < 0) v = 0;
  Cell& c = local_cell();
  c.samples.push_back(v);
  c.sum += v;
  ++c.buckets[static_cast<std::size_t>(bucket_of(v))];
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const auto& slot : cells_) {
    if (const Cell* c = slot.load(std::memory_order_acquire)) n += c->samples.size();
  }
  return n;
}

std::int64_t Histogram::sum() const {
  std::int64_t s = 0;
  for (const auto& slot : cells_) {
    if (const Cell* c = slot.load(std::memory_order_acquire)) s += c->sum;
  }
  return s;
}

const std::vector<std::int64_t>& Histogram::merged() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t n = count();
  if (sorted_count_ != n) {
    sorted_cache_.clear();
    sorted_cache_.reserve(n);
    for (const auto& slot : cells_) {
      if (const Cell* c = slot.load(std::memory_order_acquire)) {
        sorted_cache_.insert(sorted_cache_.end(), c->samples.begin(), c->samples.end());
      }
    }
    // A sorted multiset is placement-independent: the merged view is the
    // same whichever shard recorded which sample.
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    sorted_count_ = n;
  }
  return sorted_cache_;
}

std::int64_t Histogram::min() const {
  const auto& xs = merged();
  return xs.empty() ? 0 : xs.front();
}

std::int64_t Histogram::max() const {
  const auto& xs = merged();
  return xs.empty() ? 0 : xs.back();
}

std::int64_t Histogram::percentile(double p) const {
  const auto& xs = merged();
  if (xs.empty()) return 0;
  return xs[nearest_rank_index(p, xs.size())];
}

int Histogram::bucket_of(std::int64_t v) {
  if (v <= 0) return 0;
  return std::bit_width(static_cast<std::uint64_t>(v));
}

std::int64_t Histogram::bucket_min(int b) {
  if (b <= 0) return 0;
  if (b == 1) return 1;
  return std::int64_t{1} << (b - 1);
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets() const {
  std::array<std::uint64_t, kBuckets> out{};
  for (const auto& slot : cells_) {
    if (const Cell* c = slot.load(std::memory_order_acquire)) {
      for (int b = 0; b < kBuckets; ++b) out[static_cast<std::size_t>(b)] += c->buckets[static_cast<std::size_t>(b)];
    }
  }
  return out;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slot : cells_) {
    if (Cell* c = slot.load(std::memory_order_relaxed)) {
      c->samples.clear();
      c->buckets.fill(0);
      c->sum = 0;
    }
  }
  sorted_cache_.clear();
  sorted_count_ = ~std::uint64_t{0};
}

bool name_in_group(std::string_view name, std::string_view prefix) {
  if (prefix.empty()) return true;
  if (!name.starts_with(prefix)) return false;
  if (name.size() == prefix.size()) return true;
  return prefix.back() == '.' || name[prefix.size()] == '.';
}

namespace {

struct Registries {
  std::mutex mu;
  // std::map: stable addresses for the registered objects and sorted
  // snapshots.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registries& registry() {
  static auto* r = new Registries();  // leaked: registrations outlive everything
  return *r;
}

}  // namespace

Counter& counter(std::string_view name) {
  Registries& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Histogram& histogram(std::string_view name) {
  Registries& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    it = r.histograms.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot(std::string_view prefix) {
  Registries& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, c] : r.counters) {
    if (name_in_group(name, prefix)) out.emplace_back(name, c->value());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> histogram_snapshot(
    std::string_view prefix) {
  Registries& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, const Histogram*>> out;
  for (const auto& [name, h] : r.histograms) {
    if (name_in_group(name, prefix)) out.emplace_back(name, h.get());
  }
  return out;
}

void reset_counters() {
  Registries& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->reset();
}

void reset_histograms() {
  Registries& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, h] : r.histograms) h->reset();
}

}  // namespace tio
