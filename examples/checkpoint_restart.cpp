// Checkpoint/restart on the simulated LANL cluster.
//
// The paper's motivating scenario end to end: a bulk-synchronous job
// checkpoints N-1 through PLFS, "crashes", and a restart job reads the
// checkpoint back — once per index-aggregation strategy, and once directly
// against the underlying parallel file system for comparison.
//
//   ./checkpoint_restart [--procs 512] [--per-proc-mib 8] [--record-kib 47]
#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/strutil.h"
#include "common/table.h"
#include "testbed/testbed.h"
#include "workloads/harness.h"
#include "workloads/kernels.h"

using namespace tio;
using namespace tio::workloads;

int main(int argc, char** argv) {
  FlagSet flags("checkpoint_restart: N-1 checkpoint + restart, PLFS vs direct");
  auto* procs = flags.add_i64("procs", 512, "processes in the job");
  auto* per_proc_mib = flags.add_i64("per-proc-mib", 8, "checkpoint MiB per process");
  auto* record_kib = flags.add_i64("record-kib", 47, "application record size (KiB)");
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  const std::uint64_t per_proc = static_cast<std::uint64_t>(*per_proc_mib) << 20;
  const std::uint64_t record = static_cast<std::uint64_t>(*record_kib) << 10;
  const int n = static_cast<int>(*procs);

  std::printf("Job: %d processes, %s checkpoint (%s records), 64-node cluster, "
              "1.25 GB/s storage network\n\n",
              n, format_bytes(per_proc * n).c_str(), format_bytes(record).c_str());

  Table table({"configuration", "write (s)", "write MB/s", "restart (s)", "restart MB/s"});

  struct Config {
    std::string name;
    Access access;
    plfs::ReadStrategy strategy;
    bool flatten;
  };
  const std::vector<Config> configs = {
      {"direct PFS (N-1)", Access::direct_n1, plfs::ReadStrategy::original, false},
      {"PLFS + Original read", Access::plfs_n1, plfs::ReadStrategy::original, false},
      {"PLFS + Index Flatten", Access::plfs_n1, plfs::ReadStrategy::index_flatten, true},
      {"PLFS + Parallel Index Read", Access::plfs_n1, plfs::ReadStrategy::parallel_read, false},
  };
  for (const auto& config : configs) {
    testbed::Rig rig({.cluster = testbed::lanl_cluster(), .pfs = testbed::lanl_pfs(4)});
    JobSpec spec = mpiio_test(per_proc, record, TargetOptions{
                                                    .access = config.access,
                                                    .strategy = config.strategy,
                                                    .flatten_on_close = config.flatten,
                                                });
    spec.file = "checkpoint";
    spec.drop_caches_before_read = true;  // the restart is long after the crash
    const JobResult r = run_job(rig, n, spec);
    table.add_row({config.name, Table::num(r.write.total_s(), 2),
                   Table::num(r.write.effective_bw() / 1e6, 0),
                   Table::num(r.read.total_s(), 2),
                   Table::num(r.read.effective_bw() / 1e6, 0)});
  }
  table.print(std::cout);
  std::printf(
      "\nEvery restart read was verified byte-for-byte against what the\n"
      "checkpoint wrote (the harness checks content on every read).\n");
  return 0;
}
