#include "common/jsonfmt.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <limits>
#include <string>

namespace tio {
namespace {

TEST(JsonDouble, FixedPointFormatting) {
  EXPECT_EQ(json_double(0.0, 3), "0.000");
  EXPECT_EQ(json_double(1.0, 3), "1.000");
  EXPECT_EQ(json_double(1.5, 3), "1.500");
  EXPECT_EQ(json_double(-2.25, 2), "-2.25");
  EXPECT_EQ(json_double(1234.5678, 2), "1234.57");
  EXPECT_EQ(json_double(0.0005, 6), "0.000500");
}

TEST(JsonDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN(), 3), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity(), 3), "null");
  EXPECT_EQ(json_double(-std::numeric_limits<double>::infinity(), 3), "null");
}

TEST(JsonDouble, IgnoresCommaDecimalLocale) {
  // The regression this helper exists for: under a comma-decimal locale,
  // printf("%f") emits "1,500000" and corrupts JSON. The container may only
  // ship C/POSIX locales, so try several comma-decimal ones and skip if
  // none can be installed into LC_NUMERIC.
  const char* candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8"};
  const char* installed = nullptr;
  for (const char* name : candidates) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      installed = name;
      break;
    }
  }
  if (installed == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale available";
  }
  char printf_out[64];
  std::snprintf(printf_out, sizeof(printf_out), "%.3f", 1.5);
  EXPECT_STREQ(printf_out, "1,500");  // printf is locale-poisoned...
  EXPECT_EQ(json_double(1.5, 3), "1.500");  // ...json_double is not
  std::setlocale(LC_NUMERIC, "C");
}

TEST(JsonQuote, EscapesMandatoryCharacters) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("line\nfeed\ttab\rret"), "\"line\\nfeed\\ttab\\rret\"");
  EXPECT_EQ(json_quote(std::string("\x01", 1)), "\"\\u0001\"");
  EXPECT_EQ(json_quote(""), "\"\"");
}

}  // namespace
}  // namespace tio
