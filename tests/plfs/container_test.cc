#include "plfs/container.h"

#include <gtest/gtest.h>

#include <set>

namespace tio::plfs {
namespace {

PlfsMount mount_with(std::size_t backends, bool spread_containers = true,
                     bool spread_subdirs = true) {
  PlfsMount m;
  for (std::size_t i = 0; i < backends; ++i) {
    m.backends.push_back("/vol" + std::to_string(i) + "/plfs");
  }
  m.spread_containers = spread_containers;
  m.spread_subdirs = spread_subdirs;
  m.num_subdirs = 16;
  return m;
}

TEST(ContainerLayout, RequiresBackendsAndSubdirs) {
  PlfsMount empty;
  EXPECT_THROW(ContainerLayout(empty, "/f"), std::invalid_argument);
  PlfsMount no_subdirs = mount_with(1);
  no_subdirs.num_subdirs = 0;
  EXPECT_THROW(ContainerLayout(no_subdirs, "/f"), std::invalid_argument);
}

TEST(ContainerLayout, PathsLiveUnderTheirBackend) {
  const PlfsMount m = mount_with(1);
  const ContainerLayout lay(m, "/ckpt/file1");
  EXPECT_EQ(lay.canonical_container(), "/vol0/plfs/ckpt/file1");
  EXPECT_EQ(lay.access_path(), "/vol0/plfs/ckpt/file1/access");
  EXPECT_EQ(lay.meta_dir(), "/vol0/plfs/ckpt/file1/meta");
  EXPECT_EQ(lay.openhosts_dir(), "/vol0/plfs/ckpt/file1/openhosts");
  EXPECT_EQ(lay.global_index_path(), "/vol0/plfs/ckpt/file1/global.index");
}

TEST(ContainerLayout, LogicalPathIsNormalized) {
  const PlfsMount m = mount_with(1);
  const ContainerLayout lay(m, "ckpt//file1/");
  EXPECT_EQ(lay.logical(), "/ckpt/file1");
}

TEST(ContainerLayout, DataAndIndexLogsShareTheRankSubdir) {
  const PlfsMount m = mount_with(1);
  const ContainerLayout lay(m, "/f");
  const auto k = lay.subdir_of_rank(37);
  EXPECT_EQ(k, 37u % 16);
  EXPECT_EQ(lay.data_log_path(37), lay.subdir_path(k) + "/data.37");
  EXPECT_EQ(lay.index_log_path(37), lay.subdir_path(k) + "/index.37");
}

TEST(ContainerLayout, SingleBackendPutsEverythingTogether) {
  const PlfsMount m = mount_with(1);
  const ContainerLayout lay(m, "/f");
  for (std::size_t k = 0; k < 16; ++k) EXPECT_EQ(lay.subdir_backend(k), 0u);
}

TEST(ContainerLayout, SubdirSpreadingUsesMultipleBackends) {
  const PlfsMount m = mount_with(8);
  const ContainerLayout lay(m, "/f");
  std::set<std::size_t> used;
  for (std::size_t k = 0; k < 16; ++k) used.insert(lay.subdir_backend(k));
  EXPECT_GE(used.size(), 4u);  // statically hashed, should hit most backends
}

TEST(ContainerLayout, ContainerSpreadingDistributesContainers) {
  const PlfsMount m = mount_with(8);
  std::set<std::size_t> used;
  for (int i = 0; i < 64; ++i) {
    used.insert(ContainerLayout(m, "/file" + std::to_string(i)).canonical_backend());
  }
  EXPECT_GE(used.size(), 6u);
}

TEST(ContainerLayout, SpreadingDisabledPinsToBackendZero) {
  const PlfsMount m = mount_with(8, /*spread_containers=*/false, /*spread_subdirs=*/false);
  for (int i = 0; i < 16; ++i) {
    const ContainerLayout lay(m, "/file" + std::to_string(i));
    EXPECT_EQ(lay.canonical_backend(), 0u);
    for (std::size_t k = 0; k < 16; ++k) EXPECT_EQ(lay.subdir_backend(k), 0u);
  }
}

TEST(ContainerLayout, HashingIsDeterministic) {
  const PlfsMount m = mount_with(8);
  const ContainerLayout a(m, "/some/file");
  const ContainerLayout b(m, "/some/file");
  EXPECT_EQ(a.canonical_backend(), b.canonical_backend());
  for (std::size_t k = 0; k < 16; ++k) EXPECT_EQ(a.subdir_backend(k), b.subdir_backend(k));
}

TEST(ContainerLayout, BalanceOfContainerHashing) {
  const PlfsMount m = mount_with(4);
  std::vector<int> counts(4, 0);
  const int kFiles = 4000;
  for (int i = 0; i < kFiles; ++i) {
    ++counts[ContainerLayout(m, "/dir/f" + std::to_string(i)).canonical_backend()];
  }
  for (const int c : counts) {
    EXPECT_GT(c, kFiles / 4 * 0.8);
    EXPECT_LT(c, kFiles / 4 * 1.2);
  }
}

TEST(ContainerLayout, BalanceOfSubdirHashingAcrossContainers) {
  const PlfsMount m = mount_with(4);
  std::vector<int> counts(4, 0);
  for (int f = 0; f < 250; ++f) {
    const ContainerLayout lay(m, "/f" + std::to_string(f));
    for (std::size_t k = 0; k < 16; ++k) ++counts[lay.subdir_backend(k)];
  }
  const int total = 250 * 16;
  for (const int c : counts) {
    EXPECT_GT(c, total / 4 * 0.8);
    EXPECT_LT(c, total / 4 * 1.2);
  }
}

TEST(ParseIndexLogName, AcceptsValidRejectsInvalid) {
  std::uint32_t w = 0;
  EXPECT_TRUE(parse_index_log_name("index.0", &w));
  EXPECT_EQ(w, 0u);
  EXPECT_TRUE(parse_index_log_name("index.65535", &w));
  EXPECT_EQ(w, 65535u);
  EXPECT_FALSE(parse_index_log_name("data.5", &w));
  EXPECT_FALSE(parse_index_log_name("index.", &w));
  EXPECT_FALSE(parse_index_log_name("index.5x", &w));
  EXPECT_FALSE(parse_index_log_name("index", &w));
}

TEST(ParseMetaDroppingName, AcceptsValidRejectsInvalid) {
  std::uint32_t w = 0;
  std::uint64_t s = 0;
  EXPECT_TRUE(parse_meta_dropping_name("dropping.12.52428800", &w, &s));
  EXPECT_EQ(w, 12u);
  EXPECT_EQ(s, 52428800u);
  EXPECT_FALSE(parse_meta_dropping_name("dropping.12", &w, &s));
  EXPECT_FALSE(parse_meta_dropping_name("dropping.x.5", &w, &s));
  EXPECT_FALSE(parse_meta_dropping_name("other.1.2", &w, &s));
}

}  // namespace
}  // namespace tio::plfs
