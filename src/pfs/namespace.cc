#include "pfs/namespace.h"

#include "common/strutil.h"

namespace tio::pfs {

const Namespace::Node* Namespace::find(std::string_view path) const {
  const Node* cur = root_.get();
  for (const auto comp : path_components(path)) {
    if (!cur->is_dir) return nullptr;
    const auto it = cur->children.find(comp);
    if (it == cur->children.end()) return nullptr;
    cur = it->second.get();
  }
  return cur;
}

Namespace::Node* Namespace::find(std::string_view path) {
  return const_cast<Node*>(std::as_const(*this).find(path));
}

Result<Namespace::Node*> Namespace::parent_of(std::string_view path, std::string_view* leaf) {
  const auto comps = path_components(path);
  if (comps.empty()) return error(Errc::invalid, "root has no parent: " + std::string(path));
  Node* cur = root_.get();
  for (std::size_t i = 0; i + 1 < comps.size(); ++i) {
    if (!cur->is_dir) return error(Errc::not_a_directory, std::string(comps[i]));
    const auto it = cur->children.find(comps[i]);
    if (it == cur->children.end()) {
      return error(Errc::not_found, "missing path component: " + std::string(comps[i]));
    }
    cur = it->second.get();
  }
  if (!cur->is_dir) return error(Errc::not_a_directory, std::string(path));
  *leaf = comps.back();
  return cur;
}

Result<Namespace::CreateResult> Namespace::create_file(std::string_view path, bool excl) {
  std::string_view leaf;
  TIO_ASSIGN_OR_RETURN(Node * parent, parent_of(path, &leaf));
  const auto it = parent->children.find(leaf);
  if (it != parent->children.end()) {
    if (it->second->is_dir) return error(Errc::is_a_directory, std::string(path));
    if (excl) return error(Errc::exists, std::string(path));
    return CreateResult{it->second->oid, false};
  }
  auto node = std::make_unique<Node>();
  node->is_dir = false;
  node->oid = next_oid_++;
  const ObjectId oid = node->oid;
  parent->children.emplace(std::string(leaf), std::move(node));
  return CreateResult{oid, true};
}

Result<Namespace::Entry> Namespace::lookup(std::string_view path) const {
  const Node* n = find(path);
  if (n == nullptr) return error(Errc::not_found, std::string(path));
  return Entry{n->is_dir, n->oid};
}

Status Namespace::mkdir(std::string_view path) {
  std::string_view leaf;
  TIO_ASSIGN_OR_RETURN(Node * parent, parent_of(path, &leaf));
  if (parent->children.contains(leaf)) return error(Errc::exists, std::string(path));
  auto node = std::make_unique<Node>();
  node->is_dir = true;
  parent->children.emplace(std::string(leaf), std::move(node));
  return Status::Ok();
}

Status Namespace::mkdir_all(std::string_view path) {
  std::string built = "/";
  for (const auto comp : path_components(path)) {
    built = path_join(built, comp);
    const Node* n = find(built);
    if (n == nullptr) {
      TIO_RETURN_IF_ERROR(mkdir(built));
    } else if (!n->is_dir) {
      return error(Errc::not_a_directory, built);
    }
  }
  return Status::Ok();
}

Status Namespace::rmdir(std::string_view path) {
  std::string_view leaf;
  TIO_ASSIGN_OR_RETURN(Node * parent, parent_of(path, &leaf));
  const auto it = parent->children.find(leaf);
  if (it == parent->children.end()) return error(Errc::not_found, std::string(path));
  if (!it->second->is_dir) return error(Errc::not_a_directory, std::string(path));
  if (!it->second->children.empty()) return error(Errc::not_empty, std::string(path));
  parent->children.erase(it);
  return Status::Ok();
}

Result<ObjectId> Namespace::unlink(std::string_view path) {
  std::string_view leaf;
  TIO_ASSIGN_OR_RETURN(Node * parent, parent_of(path, &leaf));
  const auto it = parent->children.find(leaf);
  if (it == parent->children.end()) return error(Errc::not_found, std::string(path));
  if (it->second->is_dir) return error(Errc::is_a_directory, std::string(path));
  const ObjectId oid = it->second->oid;
  parent->children.erase(it);
  return oid;
}

Result<std::vector<DirEntry>> Namespace::readdir(std::string_view path) const {
  const Node* n = find(path);
  if (n == nullptr) return error(Errc::not_found, std::string(path));
  if (!n->is_dir) return error(Errc::not_a_directory, std::string(path));
  std::vector<DirEntry> out;
  out.reserve(n->children.size());
  for (const auto& [name, child] : n->children) {
    out.push_back(DirEntry{name, child->is_dir});
  }
  return out;
}

std::uint64_t Namespace::dir_entry_count(std::string_view path) const {
  const Node* n = find(path);
  if (n == nullptr || !n->is_dir) return 0;
  return n->children.size();
}

bool Namespace::exists(std::string_view path) const { return find(path) != nullptr; }

Status Namespace::rename(std::string_view from, std::string_view to) {
  std::string_view from_leaf;
  TIO_ASSIGN_OR_RETURN(Node * from_parent, parent_of(from, &from_leaf));
  const auto it = from_parent->children.find(from_leaf);
  if (it == from_parent->children.end()) return error(Errc::not_found, std::string(from));
  std::string_view to_leaf;
  TIO_ASSIGN_OR_RETURN(Node * to_parent, parent_of(to, &to_leaf));
  const auto to_it = to_parent->children.find(to_leaf);
  if (to_it != to_parent->children.end()) {
    // POSIX allows replacing an empty dir with a dir, a file with a file.
    if (to_it->second->is_dir != it->second->is_dir) {
      return error(to_it->second->is_dir ? Errc::is_a_directory : Errc::not_a_directory,
                   std::string(to));
    }
    if (to_it->second->is_dir && !to_it->second->children.empty()) {
      return error(Errc::not_empty, std::string(to));
    }
    to_parent->children.erase(to_it);
  }
  auto node = std::move(it->second);
  from_parent->children.erase(it);
  to_parent->children.emplace(std::string(to_leaf), std::move(node));
  return Status::Ok();
}

}  // namespace tio::pfs
