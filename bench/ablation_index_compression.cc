// Ablation: index entry compression.
//
// The Index collapses same-writer entries that are contiguous both
// logically and physically. Sequential/segmented patterns compress
// massively (bounding broadcast volume and lookup size); interleaved
// strided N-1 patterns cannot compress because logical neighbours come from
// different writers — which is exactly the case the wire-v2 pattern codec
// recovers: the surviving mappings are still arithmetic per writer, so the
// encoded bytes collapse even when the mapping count cannot.
#include "bench_util.h"

#include "plfs/index.h"
#include "plfs/mount.h"
#include "plfs/pattern.h"

using namespace tio;
using namespace tio::plfs;

namespace {

std::vector<IndexEntry> make_entries(int writers, int per_writer, std::uint64_t record,
                                     bool segmented) {
  std::vector<IndexEntry> out;
  std::vector<std::uint64_t> phys(writers, 0);
  for (int w = 0; w < writers; ++w) {
    for (int r = 0; r < per_writer; ++r) {
      const std::uint64_t logical =
          segmented
              ? (static_cast<std::uint64_t>(w) * per_writer + r) * record
              : (static_cast<std::uint64_t>(r) * writers + w) * record;
      out.push_back(IndexEntry{logical, record, phys[w],
                               static_cast<std::int64_t>(out.size() + 1),
                               static_cast<std::uint32_t>(w)});
      phys[w] += record;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("ablation_index_compression: entry-compression effectiveness");
  auto* writers = flags.add_i64("writers", 1024, "writer processes");
  auto* per_writer = flags.add_i64("per-writer", 256, "entries per writer");
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }

  bench::print_header("Ablation — Index compression",
                      "broadcast volume of the global index, compressed vs raw");
  Table t({"pattern", "raw entries", "mappings", "raw bytes", "compressed bytes", "ratio",
           "wire v2 bytes", "v2 ratio"});
  for (const bool segmented : {true, false}) {
    auto entries = make_entries(static_cast<int>(*writers), static_cast<int>(*per_writer),
                                64_KiB, segmented);
    const std::size_t raw = entries.size();
    const BTreeIndex uncompressed = BTreeIndex::build(entries, /*compress=*/false);
    const BTreeIndex compressed = BTreeIndex::build(std::move(entries), /*compress=*/true);
    const std::uint64_t v2 = compressed.serialized_bytes(WireFormat::v2);
    t.add_row({segmented ? "segmented (per-rank sequential)" : "strided (interleaved)",
               std::to_string(raw), std::to_string(compressed.mapping_count()),
               format_bytes(uncompressed.serialized_bytes()),
               format_bytes(compressed.serialized_bytes()),
               Table::num(static_cast<double>(uncompressed.serialized_bytes()) /
                              static_cast<double>(compressed.serialized_bytes()),
                          1) +
                   "x",
               format_bytes(v2),
               Table::num(static_cast<double>(uncompressed.serialized_bytes()) /
                              static_cast<double>(v2),
                          1) +
                   "x"});
  }
  t.print(std::cout);
  bench::print_sim_counters();
  return 0;
}
