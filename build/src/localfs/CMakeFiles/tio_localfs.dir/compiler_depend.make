# Empty compiler generated dependencies file for tio_localfs.
# This may be replaced when dependencies are built.
