file(REMOVE_RECURSE
  "CMakeFiles/tio_pfs.dir/extent_map.cc.o"
  "CMakeFiles/tio_pfs.dir/extent_map.cc.o.d"
  "CMakeFiles/tio_pfs.dir/namespace.cc.o"
  "CMakeFiles/tio_pfs.dir/namespace.cc.o.d"
  "CMakeFiles/tio_pfs.dir/ost.cc.o"
  "CMakeFiles/tio_pfs.dir/ost.cc.o.d"
  "CMakeFiles/tio_pfs.dir/sim_pfs.cc.o"
  "CMakeFiles/tio_pfs.dir/sim_pfs.cc.o.d"
  "libtio_pfs.a"
  "libtio_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tio_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
