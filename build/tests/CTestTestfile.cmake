# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_test[1]_include.cmake")
include("/root/repo/build/tests/localfs_test[1]_include.cmake")
include("/root/repo/build/tests/mpisim_test[1]_include.cmake")
include("/root/repo/build/tests/plfs_test[1]_include.cmake")
include("/root/repo/build/tests/iolib_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
