// In-memory POSIX-like namespace tree shared by the simulated PFS and the
// in-memory test file system. Pure data structure: all timing/contention is
// layered on top by the owning file system.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "pfs/types.h"

namespace tio::pfs {

class Namespace {
 public:
  Namespace() : root_(std::make_unique<Node>()) { root_->is_dir = true; }

  struct Entry {
    bool is_dir = false;
    ObjectId oid = kNoObject;  // for files
  };

  // Creates a file; allocates a fresh ObjectId. With `excl`, an existing
  // file is an error; otherwise the existing ObjectId is returned with
  // `created=false`.
  struct CreateResult {
    ObjectId oid;
    bool created;
  };
  Result<CreateResult> create_file(std::string_view path, bool excl);

  Result<Entry> lookup(std::string_view path) const;
  Status mkdir(std::string_view path);
  // mkdir -p semantics; never fails on existing directories.
  Status mkdir_all(std::string_view path);
  Status rmdir(std::string_view path);
  // Removes a file and returns its ObjectId (for store reclamation).
  Result<ObjectId> unlink(std::string_view path);
  Result<std::vector<DirEntry>> readdir(std::string_view path) const;
  // Number of entries in a directory (0 for missing) — drives the
  // directory-degradation cost model without paying readdir.
  std::uint64_t dir_entry_count(std::string_view path) const;
  bool exists(std::string_view path) const;
  Status rename(std::string_view from, std::string_view to);

  std::uint64_t next_object_id() const { return next_oid_; }

 private:
  struct Node {
    bool is_dir = false;
    ObjectId oid = kNoObject;
    std::map<std::string, std::unique_ptr<Node>, std::less<>> children;
  };

  const Node* find(std::string_view path) const;
  Node* find(std::string_view path);
  // Parent directory node of `path`, or error.
  Result<Node*> parent_of(std::string_view path, std::string_view* leaf);

  std::unique_ptr<Node> root_;
  ObjectId next_oid_ = 1;
};

}  // namespace tio::pfs
