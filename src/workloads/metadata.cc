#include "workloads/metadata.h"

#include <stdexcept>

#include "common/rng.h"
#include "common/strutil.h"
#include "mpisim/comm.h"
#include "plfs/plfs.h"
#include "workloads/direct_retry.h"

namespace tio::workloads {

namespace {

[[noreturn]] void fail(const std::string& what, const Status& status) {
  throw std::runtime_error("metadata storm " + what + ": " + status.to_string());
}

}  // namespace

MetaResult run_metadata_storm(testbed::Rig& rig, int nprocs, const MetaSpec& spec) {
  MetaResult result;
  // Pre-create the logical directory out-of-band (not part of the storm).
  for (const auto& b : rig.mount().backends) {
    (void)rig.pfs().ns().mkdir_all(path_join(b, spec.dir));
  }
  (void)rig.pfs().ns().mkdir_all(path_join(rig.direct_dir(), spec.dir));

  mpi::run_spmd(rig.cluster(), nprocs, [&](mpi::Comm comm) -> sim::Task<void> {
    const pfs::IoCtx ctx{comm.my_node(), comm.global_rank()};
    sim::Engine& engine = comm.engine();
    std::vector<std::unique_ptr<plfs::WriteHandle>> plfs_handles;
    std::vector<pfs::FileId> direct_fds;

    co_await comm.barrier();
    const TimePoint t0 = engine.now();
    for (int i = 0; i < spec.files_per_proc; ++i) {
      if (spec.use_plfs) {
        // N-N: unique container per (rank, i). N-1: one shared container,
        // each process its own writer rank.
        const std::string logical =
            spec.shared_file
                ? "/" + spec.dir + "/shared"
                : str_printf("/%s/f%d_%d", spec.dir.c_str(), comm.rank(), i);
        auto wh = co_await rig.plfs().open_write(
            ctx, logical, spec.shared_file ? comm.rank() : 0);
        if (!wh.ok()) fail("plfs open", wh.status());
        plfs_handles.push_back(std::move(wh.value()));
      } else if (spec.shared_file) {
        const std::string path = path_join(rig.direct_dir(), spec.dir + "/shared");
        if (comm.rank() == 0 && i == 0) {
          auto fd = co_await direct_retry(
              engine, rig.mount().retry, direct_op_key(path),
              [&] { return rig.fs().open(ctx, path, pfs::OpenFlags::wr_trunc()); });
          if (!fd.ok()) fail("direct create", fd.status());
          direct_fds.push_back(*fd);
          co_await comm.barrier();
        } else {
          if (i == 0) co_await comm.barrier();
          auto fd = co_await direct_retry(
              engine, rig.mount().retry, direct_op_key(path),
              [&] { return rig.fs().open(ctx, path, pfs::OpenFlags::wr()); });
          if (!fd.ok()) fail("direct open", fd.status());
          direct_fds.push_back(*fd);
        }
      } else {
        // Direct N-N: every create lands in the single shared directory.
        const std::string path = path_join(
            rig.direct_dir(), str_printf("%s/f%d_%d", spec.dir.c_str(), comm.rank(), i));
        auto fd = co_await direct_retry(
            engine, rig.mount().retry, direct_op_key(path),
            [&] { return rig.fs().open(ctx, path, pfs::OpenFlags::wr_trunc()); });
        if (!fd.ok()) fail("direct create", fd.status());
        direct_fds.push_back(*fd);
      }
    }
    co_await comm.barrier();
    const TimePoint t1 = engine.now();

    for (auto& wh : plfs_handles) {
      const Status st = co_await wh->close();
      if (!st.ok()) fail("plfs close", st);
    }
    for (const auto fd : direct_fds) {
      const Status st = co_await direct_retry(
          engine, rig.mount().retry, splitmix64(fd) ^ 2,
          [&] { return rig.fs().close(ctx, fd); });
      if (!st.ok()) fail("direct close", st);
    }
    co_await comm.barrier();
    const TimePoint t2 = engine.now();

    if (comm.rank() == 0) {
      result.open_s = (t1 - t0).to_seconds();
      result.close_s = (t2 - t1).to_seconds();
    }
  });
  return result;
}

}  // namespace tio::workloads
