#include "plfs/container.h"

#include <charconv>
#include <stdexcept>

#include "common/rng.h"
#include "common/strutil.h"

namespace tio::plfs {

namespace {
std::uint64_t string_hash(std::string_view s) {
  std::uint64_t h = 0x9ae16a3b2f90404full;
  for (const char c : s) h = splitmix64(h ^ static_cast<unsigned char>(c));
  return h;
}
}  // namespace

ContainerLayout::ContainerLayout(const PlfsMount& mount, std::string logical_path)
    : mount_(&mount), logical_(path_normalize(logical_path)) {
  if (mount_->backends.empty()) {
    throw std::invalid_argument("PlfsMount must have at least one backend");
  }
  if (mount_->num_subdirs == 0) {
    throw std::invalid_argument("PlfsMount must have at least one subdir");
  }
}

std::uint64_t ContainerLayout::path_hash() const { return string_hash(logical_); }

std::size_t ContainerLayout::canonical_backend() const {
  if (!mount_->spread_containers) return 0;
  return static_cast<std::size_t>(path_hash() % mount_->backends.size());
}

std::size_t ContainerLayout::subdir_backend(std::size_t k) const {
  if (!mount_->spread_subdirs) return canonical_backend();
  return static_cast<std::size_t>(hash_combine(path_hash(), k) % mount_->backends.size());
}

std::size_t ContainerLayout::subdir_of_rank(int rank) const {
  return static_cast<std::size_t>(rank) % mount_->num_subdirs;
}

std::string ContainerLayout::container_on(std::size_t backend) const {
  return path_join(mount_->backends[backend], logical_);
}

std::string ContainerLayout::access_path() const {
  return path_join(canonical_container(), "access");
}
std::string ContainerLayout::meta_dir() const { return path_join(canonical_container(), "meta"); }
std::string ContainerLayout::openhosts_dir() const {
  return path_join(canonical_container(), "openhosts");
}
std::string ContainerLayout::global_index_path() const {
  return path_join(canonical_container(), "global.index");
}

std::string ContainerLayout::subdir_path(std::size_t k) const {
  return subdir_path_on(k, subdir_backend(k));
}

std::string ContainerLayout::subdir_path_on(std::size_t k, std::size_t backend) const {
  return path_join(container_on(backend), "subdir." + std::to_string(k));
}

std::string ContainerLayout::data_log_path(int rank) const {
  return path_join(subdir_path(subdir_of_rank(rank)), "data." + std::to_string(rank));
}

std::string ContainerLayout::index_log_path(int rank) const {
  return path_join(subdir_path(subdir_of_rank(rank)), "index." + std::to_string(rank));
}

std::string ContainerLayout::data_log_path_on(int rank, std::size_t backend) const {
  return path_join(subdir_path_on(subdir_of_rank(rank), backend),
                   "data." + std::to_string(rank));
}

std::string ContainerLayout::index_log_path_on(int rank, std::size_t backend) const {
  return path_join(subdir_path_on(subdir_of_rank(rank), backend),
                   "index." + std::to_string(rank));
}

std::string ContainerLayout::stale_marker_path(std::size_t k) const {
  return path_join(canonical_container(), "stale." + std::to_string(k));
}

std::string ContainerLayout::openhost_record_path(int rank) const {
  return path_join(openhosts_dir(), "host." + std::to_string(rank));
}

std::string ContainerLayout::meta_dropping_path(int rank, std::uint64_t logical_size) const {
  return path_join(meta_dir(),
                   str_printf("dropping.%d.%llu", rank,
                              static_cast<unsigned long long>(logical_size)));
}

bool parse_index_log_name(std::string_view name, std::uint32_t* writer) {
  if (!name.starts_with("index.")) return false;
  const std::string_view digits = name.substr(6);
  std::uint32_t value = 0;
  const auto [p, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc{} || p != digits.data() + digits.size()) return false;
  *writer = value;
  return true;
}

bool parse_stale_marker_name(std::string_view name, std::size_t* k) {
  if (!name.starts_with("stale.")) return false;
  const std::string_view digits = name.substr(6);
  std::size_t value = 0;
  const auto [p, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc{} || p != digits.data() + digits.size()) return false;
  *k = value;
  return true;
}

bool parse_meta_dropping_name(std::string_view name, std::uint32_t* writer,
                              std::uint64_t* logical_size) {
  if (!name.starts_with("dropping.")) return false;
  const auto rest = name.substr(9);
  const std::size_t dot = rest.find('.');
  if (dot == std::string_view::npos) return false;
  std::uint32_t w = 0;
  std::uint64_t sz = 0;
  auto [p1, e1] = std::from_chars(rest.data(), rest.data() + dot, w);
  if (e1 != std::errc{} || p1 != rest.data() + dot) return false;
  const auto tail = rest.substr(dot + 1);
  auto [p2, e2] = std::from_chars(tail.data(), tail.data() + tail.size(), sz);
  if (e2 != std::errc{} || p2 != tail.data() + tail.size()) return false;
  *writer = w;
  *logical_size = sz;
  return true;
}

}  // namespace tio::plfs
