// Chaos suite: the full PLFS stack under seeded fault plans.
//
// An N-1 write (torn writes, transient errors, crash-on-close of the
// flattened index, MDS outages) followed by reads through all three
// ReadStrategy values must return bytes identical to a fault-free run —
// the whole point of the retry/degradation machinery. Plans are seeded, so
// every schedule here is bit-reproducible.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/stats.h"
#include "mpisim/comm.h"
#include "pfs/faulty_fs.h"
#include "pfs/sim_pfs.h"
#include "plfs/container.h"
#include "plfs/mpiio.h"
#include "plfs/plfs.h"
#include "testutil.h"

namespace tio::plfs {
namespace {

constexpr int kProcs = 8;
constexpr int kRounds = 4;
constexpr std::uint64_t kRecord = 3000;
constexpr std::uint64_t kTotal = static_cast<std::uint64_t>(kProcs) * kRounds * kRecord;

PlfsMount chaos_mount(bool replicated = false, bool batching = false) {
  PlfsMount m;
  for (std::size_t i = 0; i < 4; ++i) {
    m.backends.push_back("/vol" + std::to_string(i) + "/plfs");
  }
  m.num_subdirs = 8;
  m.index_flush_every = 8;
  m.mds_replicated = replicated;
  m.meta_batching = batching;
  return m;
}

struct ChaosWorld {
  explicit ChaosWorld(const std::string& plan_spec, bool replicated = false,
                      std::size_t batch = 0, Duration lease = Duration::zero())
      : cluster(engine, cluster_config()),
        base(cluster, pfs_config(replicated, batch, lease)),
        faulty(base, client_plan(plan_spec, replicated)),
        plfs(faulty, chaos_mount(replicated, batch > 0)) {
    // Replicated worlds keep server-targeted faults for the raft layer;
    // unreplicated ones lower them to whole-volume outages (what the
    // testbed Rig does for --mds_replication=none).
    if (replicated) base.schedule_server_faults(parse_plan(plan_spec));
    for (const auto& b : plfs.mount().backends) {
      if (!base.ns().mkdir_all(b).ok()) std::abort();
    }
  }
  static pfs::FaultPlan parse_plan(const std::string& spec) {
    auto plan = pfs::FaultPlan::parse(spec);
    if (!plan.ok()) std::abort();
    return std::move(plan.value());
  }
  static pfs::FaultPlan client_plan(const std::string& spec, bool replicated) {
    const pfs::FaultPlan plan = parse_plan(spec);
    return replicated ? plan : plan.lowered_for_unreplicated();
  }
  static net::ClusterConfig cluster_config() {
    net::ClusterConfig c;
    c.nodes = 16;
    c.cores_per_node = 4;
    return c;
  }
  static pfs::PfsConfig pfs_config(bool replicated = false, std::size_t batch = 0,
                                   Duration lease = Duration::zero()) {
    pfs::PfsConfig c;
    c.num_mds = 4;
    c.num_osts = 8;
    if (replicated) c.mds_replication = pfs::MdsReplication::raft;
    c.mds_batch = batch;
    c.meta_lease = lease;
    return c;
  }

  void sleep_until_ms(std::int64_t ms) {
    test::run_task(engine, [](sim::Engine& e, std::int64_t target) -> sim::Task<void> {
      const TimePoint t = TimePoint::from_ns(Duration::ms(target).to_ns());
      if (t > e.now()) co_await e.sleep(t - e.now());
    }(engine, ms));
  }

  sim::Engine engine;
  net::Cluster cluster;
  pfs::SimPfs base;
  pfs::FaultyFs faulty;
  Plfs plfs;
};

// Strided N-1 write with Index Flatten requested at close.
void write_n1(ChaosWorld& w, const std::string& logical) {
  mpi::run_spmd(w.cluster, kProcs, [&](mpi::Comm comm) -> sim::Task<void> {
    auto file = co_await MpiFile::open_write(w.plfs, comm, logical);
    EXPECT_TRUE(file.ok()) << file.status();
    if (!file.ok()) co_return;
    for (int r = 0; r < kRounds; ++r) {
      const std::uint64_t off =
          (static_cast<std::uint64_t>(r) * comm.size() + comm.rank()) * kRecord;
      EXPECT_TRUE((co_await (*file)->write(off, DataView::pattern(7, off, kRecord))).ok());
    }
    EXPECT_TRUE((co_await (*file)->close_write(/*flatten=*/true)).ok());
  });
}

// Collective read of the whole file on every rank; returns rank 0's bytes.
std::vector<std::byte> read_n1(ChaosWorld& w, const std::string& logical,
                               ReadStrategy strategy) {
  std::vector<std::byte> bytes;
  mpi::run_spmd(w.cluster, kProcs, [&](mpi::Comm comm) -> sim::Task<void> {
    auto file = co_await MpiFile::open_read(w.plfs, comm, logical, strategy);
    EXPECT_TRUE(file.ok()) << file.status();
    if (!file.ok()) co_return;
    EXPECT_EQ((*file)->logical_size(), kTotal);
    auto fl = co_await (*file)->read(0, kTotal);
    EXPECT_TRUE(fl.ok()) << fl.status();
    if (!fl.ok()) co_return;
    EXPECT_TRUE(fl->content_equals(DataView::pattern(7, 0, kTotal)))
        << "strategy " << static_cast<int>(strategy) << " rank " << comm.rank();
    if (comm.rank() == 0) bytes = fl->to_bytes();
    EXPECT_TRUE((co_await (*file)->close_read()).ok());
  });
  return bytes;
}

TEST(Chaos, SeededPlansPreserveBytesAcrossAllStrategies) {
  // Fault-free reference bytes.
  ChaosWorld clean("none");
  write_n1(clean, "/chaos");
  const std::vector<std::byte> expected = read_n1(clean, "/chaos", ReadStrategy::original);
  ASSERT_EQ(expected.size(), kTotal);

  const char* kPlans[] = {
      "transient1,seed=101",
      "io=0.01,busy=0.01,stale=0.005,torn=0.05,crash_close_index=1,seed=202",
      "stress,seed=303",
  };
  for (const char* spec : kPlans) {
    SCOPED_TRACE(spec);
    ChaosWorld w(spec);
    const std::uint64_t faults_before = counter("plfs.fault.ops").value();
    write_n1(w, "/chaos");
    // Outage-bearing plans (stress) end their window at 250 ms; read after.
    w.sleep_until_ms(300);
    for (const ReadStrategy strategy : {ReadStrategy::original, ReadStrategy::index_flatten,
                                        ReadStrategy::parallel_read}) {
      EXPECT_EQ(read_n1(w, "/chaos", strategy), expected);
    }
    // The plan actually exercised the stack.
    EXPECT_GT(counter("plfs.fault.ops").value(), faults_before);
  }
}

TEST(Chaos, SameSeedIsBitReproducible) {
  const std::string spec = "io=0.01,busy=0.01,torn=0.05,crash_close_index=1,seed=777";
  const char* kCounters[] = {
      "plfs.fault.ops",       "plfs.fault.io_error",     "plfs.fault.busy",
      "plfs.fault.torn_writes", "plfs.fault.crash_close",
      "plfs.retry.attempts",  "plfs.retry.success_after_retry",
      "plfs.degrade.index_fallback", "plfs.degrade.flatten_abort",
  };
  std::vector<std::vector<std::uint64_t>> deltas;
  std::vector<std::vector<std::byte>> bytes;
  std::vector<std::int64_t> final_ns;
  for (int run = 0; run < 2; ++run) {
    std::vector<std::uint64_t> before;
    for (const char* name : kCounters) before.push_back(counter(name).value());
    ChaosWorld w(spec);
    write_n1(w, "/repro");
    bytes.push_back(read_n1(w, "/repro", ReadStrategy::index_flatten));
    final_ns.push_back(w.engine.now().to_ns());
    std::vector<std::uint64_t> delta;
    for (std::size_t i = 0; i < std::size(kCounters); ++i) {
      delta.push_back(counter(kCounters[i]).value() - before[i]);
    }
    deltas.push_back(std::move(delta));
  }
  // Same fault schedule, same retries, same degradations, same virtual
  // clock, same bytes: bit-identical runs.
  EXPECT_EQ(deltas[0], deltas[1]);
  EXPECT_EQ(final_ns[0], final_ns[1]);
  EXPECT_EQ(bytes[0], bytes[1]);
  // And the schedule was not empty.
  EXPECT_GT(deltas[0][0], 0u);
}

// Flips two bytes in the middle of `path` through the raw PFS.
sim::Task<void> flip_bytes_at_8(pfs::SimPfs& fs, std::string path) {
  const pfs::IoCtx ctx{0, 0};
  auto fd = co_await fs.open(ctx, path, pfs::OpenFlags::wr());
  EXPECT_TRUE(fd.ok()) << fd.status();
  if (!fd.ok()) co_return;
  std::vector<std::byte> garbage(2, std::byte{0xFF});
  auto n = co_await fs.write(ctx, *fd, 8, DataView::literal(std::move(garbage)));
  EXPECT_TRUE(n.ok());
  EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
}

TEST(Chaos, CorruptFlattenedIndexDegradesToParallelRead) {
  ChaosWorld w("none");
  write_n1(w, "/corrupt");
  // Corrupt the flattened index: the CRC trailer must catch it and the
  // open must fall back.
  test::run_task(w.engine,
                 flip_bytes_at_8(w.base, w.plfs.layout("/corrupt").global_index_path()));

  const std::uint64_t fallbacks_before = counter("plfs.degrade.index_fallback").value();
  const std::vector<std::byte> got = read_n1(w, "/corrupt", ReadStrategy::index_flatten);
  EXPECT_EQ(got.size(), kTotal);
  EXPECT_EQ(counter("plfs.degrade.index_fallback").value(), fallbacks_before + 1);
}

sim::Task<void> count_stale_markers(pfs::SimPfs& fs, std::string dir, bool& saw) {
  auto entries = co_await fs.readdir(pfs::IoCtx{0, 0}, dir);
  EXPECT_TRUE(entries.ok());
  if (!entries.ok()) co_return;
  for (const auto& e : *entries) {
    std::size_t k = 0;
    if (!e.is_dir && parse_stale_marker_name(e.name, &k)) saw = true;
  }
}

TEST(Chaos, MdsOutageFailsOverToFederationRing) {
  // /vol1 is down for the first 60 virtual seconds — past the whole retry
  // schedule, so writers whose subdir hashes there must fail over.
  const PlfsMount m = chaos_mount();
  std::string logical;
  for (int i = 0; i < 100 && logical.empty(); ++i) {
    ContainerLayout lay(m, "/failover" + std::to_string(i));
    if (lay.canonical_backend() == 1) continue;  // canonical MDS must be up
    for (int r = 0; r < kProcs; ++r) {
      if (lay.subdir_backend(lay.subdir_of_rank(r)) == 1) {
        logical = lay.logical();
        break;
      }
    }
  }
  ASSERT_FALSE(logical.empty());

  ChaosWorld w("outage=/vol1@0-60000");
  const std::uint64_t failovers_before = counter("plfs.degrade.mds_failover").value();
  write_n1(w, logical);
  EXPECT_GT(counter("plfs.degrade.mds_failover").value(), failovers_before);

  // The canonical container records the displacement.
  bool saw_marker = false;
  test::run_task(w.engine,
                 count_stale_markers(w.base, w.plfs.layout(logical).canonical_container(),
                                     saw_marker));
  EXPECT_TRUE(saw_marker);

  // Readers after the outage union the ring via the stale markers and see
  // every byte, under every strategy.
  w.sleep_until_ms(61000);
  for (const ReadStrategy strategy : {ReadStrategy::original, ReadStrategy::index_flatten,
                                      ReadStrategy::parallel_read}) {
    const std::vector<std::byte> got = read_n1(w, logical, strategy);
    EXPECT_EQ(got.size(), kTotal) << static_cast<int>(strategy);
  }
}

// --- Raft-replicated metadata under server-targeted chaos ---

// Several barrier-separated storm waves inside ONE SPMD program, so rank
// tasks stay live while virtual time crosses the fault window. (Separate
// run_spmd calls per wave would not work: each engine.run() drains the
// queue to empty, fast-forwarding through the scheduled fault events while
// every raft group is parked between waves.) Group 1's metadata bursts
// span ~67-123 virtual ms under seed 11.
constexpr int kWaves = 6;

void create_storm(ChaosWorld& w, bool lease_vol1_first = false) {
  mpi::run_spmd(w.cluster, kProcs, [&](mpi::Comm comm) -> sim::Task<void> {
    if (lease_vol1_first && comm.rank() == 0) {
      // Lease /vol1 before any fault window opens (the stat must live
      // inside the SPMD program: a separate engine.run() would drain the
      // queue and fast-forward through the scheduled fault events).
      EXPECT_TRUE((co_await w.faulty.stat(pfs::IoCtx{3, 0}, "/vol1")).ok());
    }
    co_await comm.barrier();
    for (int i = 0; i < kWaves; ++i) {
      const std::string logical = "/storm" + std::to_string(i);
      auto file = co_await MpiFile::open_write(w.plfs, comm, logical);
      EXPECT_TRUE(file.ok()) << file.status();
      if (!file.ok()) co_return;
      for (int r = 0; r < kRounds; ++r) {
        const std::uint64_t off =
            (static_cast<std::uint64_t>(r) * comm.size() + comm.rank()) * kRecord;
        EXPECT_TRUE((co_await (*file)->write(off, DataView::pattern(7, off, kRecord))).ok());
      }
      EXPECT_TRUE((co_await (*file)->close_write(/*flatten=*/true)).ok());
      co_await comm.barrier();
    }
  });
}

// The acceptance scenario for the replicated MDS: crash the leader of a
// metadata group at the peak of a create storm. Every create acked to a
// writer must survive the failover (acks come only after the command is
// applied), readers see every byte afterwards, and the whole schedule is a
// pure function of (plan seed, engine seed).
TEST(Chaos, RaftLeaderCrashAtCreateStormPeak) {
  const char* kCounters[] = {
      "raft.submits",        "raft.elections_won", "raft.redirects",
      "raft.client_timeouts", "plfs.fault.ops",
  };
  struct Run {
    std::vector<std::uint64_t> deltas;
    std::int64_t final_ns = 0;
    std::vector<std::byte> bytes;
  };
  auto run_once = [&kCounters] {
    Run out;
    std::vector<std::uint64_t> before;
    for (const char* name : kCounters) before.push_back(counter(name).value());
    const std::uint64_t failovers_before = histogram("raft.failover").count();
    const std::uint64_t elections_before = counter("raft.elections_won").value();

    // Group 1's create bursts run from ~67 to ~123 virtual ms (its leader
    // is established by ~66 ms). The 95-250 ms window crashes that leader
    // mid-storm — creates are in flight when the leader dies, and the
    // window outlasts a full election timeout, so the survivors elect and
    // finish the storm before the crashed replica returns.
    ChaosWorld w("server_outage=1:leader@95-250,seed=11", /*replicated=*/true);
    create_storm(w);

    // The crash interrupted live traffic: clients saw a degraded group and
    // the survivors elected a replacement beyond the four groups'
    // bootstrap elections.
    EXPECT_GT(histogram("raft.failover").count(), failovers_before);
    EXPECT_GT(counter("raft.elections_won").value(), elections_before + 4);

    // Past the outage window the restarted replica has rejoined. Every
    // acked create is readable — zero lost creates, under every strategy.
    w.sleep_until_ms(2000);
    for (int i = 0; i < kWaves; ++i) {
      const std::string logical = "/storm" + std::to_string(i);
      for (const ReadStrategy strategy :
           {ReadStrategy::original, ReadStrategy::parallel_read}) {
        EXPECT_EQ(read_n1(w, logical, strategy).size(), kTotal)
            << logical << " strategy " << static_cast<int>(strategy);
      }
    }
    // Replicated mode keeps creates on the home backend: a consistent
    // failover must not leave federation stale markers behind.
    bool saw_marker = false;
    for (int i = 0; i < kWaves; ++i) {
      test::run_task(w.engine,
                     count_stale_markers(
                         w.base, w.plfs.layout("/storm" + std::to_string(i)).canonical_container(),
                         saw_marker));
    }
    EXPECT_FALSE(saw_marker);

    out.bytes = read_n1(w, "/storm0", ReadStrategy::index_flatten);
    out.final_ns = w.engine.now().to_ns();
    for (std::size_t i = 0; i < std::size(kCounters); ++i) {
      out.deltas.push_back(counter(kCounters[i]).value() - before[i]);
    }
    return out;
  };
  const Run a = run_once();
  const Run b = run_once();
  EXPECT_EQ(a.deltas, b.deltas);
  EXPECT_EQ(a.final_ns, b.final_ns);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.bytes.size(), kTotal);
}

// Isolating (rather than crashing) the leader: the group elects around the
// unreachable leader, which steps down on heal, and the storm completes.
TEST(Chaos, RaftPartitionedLeaderHealsAndStormCompletes) {
  const std::uint64_t elections_before = counter("raft.elections_won").value();
  const std::uint64_t dropped_before = counter("raft.msgs_dropped").value();
  // Same seed and window as the crash test: group 1's create bursts are in
  // flight when its leader gets partitioned, so the survivors must elect.
  ChaosWorld w("partition=1@95-250,seed=11", /*replicated=*/true);
  create_storm(w);
  EXPECT_GT(counter("raft.elections_won").value(), elections_before + 4);
  EXPECT_GT(counter("raft.msgs_dropped").value(), dropped_before);
  w.sleep_until_ms(2000);
  for (int i = 0; i < kWaves; ++i) {
    EXPECT_EQ(read_n1(w, "/storm" + std::to_string(i), ReadStrategy::original).size(), kTotal);
  }
}

// Retries transient FaultyFs injections the way the client library would;
// permanent errors surface immediately.
template <typename Op>
sim::Task<Status> eventually(sim::Engine& engine, Op op) {
  Status last = Status::Ok();
  for (int attempt = 0; attempt < 64; ++attempt) {
    last = co_await op();
    if (last.ok() || !last.is_transient()) co_return last;
    co_await engine.sleep(Duration::ms(2));
  }
  co_return last;
}

// The batched mutation path through the same leader crash: coalesced
// create batches are single replicated commands, so an acked create is an
// applied create no matter how many entries shared its RPC. Client leases
// must be revoked across the failover (epoch bump) — every post-crash open
// revalidates instead of trusting a pre-crash lease.
TEST(Chaos, BatchedCreateStormSurvivesLeaderCrash) {
  const std::uint64_t failovers_before = histogram("raft.failover").count();
  const std::uint64_t elections_before = counter("raft.elections_won").value();
  const std::uint64_t batch_ops_before = counter("pfs.batch.ops").value();
  const std::uint64_t batch_rpcs_before = counter("pfs.batch.rpcs").value();
  const std::uint64_t inserts_before = counter("pfs.meta_cache.inserts").value();

  // Same seed and window as the unbatched crash test: group 1's leader
  // dies while create batches are in flight.
  ChaosWorld w("server_outage=1:leader@95-250,seed=11", /*replicated=*/true,
               /*batch=*/8, /*lease=*/Duration::ms(50));
  create_storm(w);

  // The storm actually went through the batcher, and the batches coalesced:
  // strictly fewer RPCs than member ops.
  const std::uint64_t batch_ops = counter("pfs.batch.ops").value() - batch_ops_before;
  const std::uint64_t batch_rpcs = counter("pfs.batch.rpcs").value() - batch_rpcs_before;
  EXPECT_GT(batch_ops, 0u);
  EXPECT_LT(batch_rpcs, batch_ops);

  // The crash interrupted live traffic and forced an election.
  EXPECT_GT(histogram("raft.failover").count(), failovers_before);
  EXPECT_GT(counter("raft.elections_won").value(), elections_before + 4);

  // Zero lost acked creates: every byte acked to a writer is readable after
  // the window (read_n1 checks content, not just size), and no read can be
  // served from a pre-failover lease — both window edges bumped group 1's
  // epoch, so any lease issued before the crash fails the epoch check.
  w.sleep_until_ms(2000);
  for (int i = 0; i < kWaves; ++i) {
    const std::string logical = "/storm" + std::to_string(i);
    for (const ReadStrategy strategy :
         {ReadStrategy::original, ReadStrategy::parallel_read}) {
      EXPECT_EQ(read_n1(w, logical, strategy).size(), kTotal)
          << logical << " strategy " << static_cast<int>(strategy);
    }
  }
  EXPECT_GT(counter("pfs.meta_cache.inserts").value(), inserts_before);
  EXPECT_GE(w.base.group_epoch(1), 2u);  // crash edge + restart edge
}

// A lease issued before a partition must not be trusted across it: both
// window edges bump the group's epoch, so the pre-cut dentry fails the
// epoch check on its next lookup (checked before TTL — revocation wins
// even on an entry that also expired). A post-heal lease that merely sits
// past its TTL dies on expiry. Both retirement paths are driven
// explicitly against group 1 (/vol1).
TEST(Chaos, LeaseExpiryAcrossPartitionForcesRevalidation) {
  const std::uint64_t elections_before = counter("raft.elections_won").value();
  ChaosWorld w("partition=1@95-250,seed=11", /*replicated=*/true,
               /*batch=*/8, /*lease=*/Duration::ms(50));

  const std::uint64_t revoked_before = counter("pfs.meta_cache.epoch_revoked").value();
  // Rank 0 leases /vol1 at t=0 (epoch 0), then the storm spans the cut:
  // group 1 elects around its partitioned leader.
  create_storm(w, /*lease_vol1_first=*/true);
  EXPECT_GT(counter("raft.elections_won").value(), elections_before + 4);

  // Past the heal edge the epoch is 2: the pre-cut lease is revoked on its
  // next lookup, not silently served.
  w.sleep_until_ms(2000);
  EXPECT_GE(w.base.group_epoch(1), 2u);
  test::run_task(w.engine, [](ChaosWorld& w) -> sim::Task<void> {
    const pfs::IoCtx ctx{3, 0};
    EXPECT_TRUE((co_await w.faulty.stat(ctx, "/vol1")).ok());
  }(w));
  EXPECT_EQ(counter("pfs.meta_cache.epoch_revoked").value(), revoked_before + 1);

  // That revalidating stat re-leased the dentry; letting the TTL lapse
  // retires it through the expiry path.
  const std::uint64_t expired_before = counter("pfs.meta_cache.expired").value();
  w.sleep_until_ms(2060);  // 60 ms > the 50 ms lease
  test::run_task(w.engine, [](ChaosWorld& w) -> sim::Task<void> {
    const pfs::IoCtx ctx{3, 0};
    EXPECT_TRUE((co_await w.faulty.stat(ctx, "/vol1")).ok());
  }(w));
  EXPECT_EQ(counter("pfs.meta_cache.expired").value(), expired_before + 1);

  // And the acked storm is fully readable after the heal.
  for (int i = 0; i < kWaves; ++i) {
    EXPECT_EQ(read_n1(w, "/storm" + std::to_string(i), ReadStrategy::original).size(), kTotal);
  }
}

// mkdir + creates + same-directory rename + unlink + rmdir, all through
// the fault-injecting layer.
sim::Task<void> meta_mutation_storm(ChaosWorld& w) {
  const pfs::IoCtx ctx{2, 0};
  auto& fs = w.faulty;
  Status st = co_await eventually(w.engine, [&] { return fs.mkdir(ctx, "/vol0/meta"); });
  EXPECT_TRUE(st.ok()) << st;
  for (int i = 0; i < 3; ++i) {
    const std::string path = "/vol0/meta/f" + std::to_string(i);
    // Non-exclusive create: the retry loop may re-run the open after a
    // fault injected on the close, so the op must be idempotent.
    st = co_await eventually(w.engine, [&]() -> sim::Task<Status> {
      auto fd = co_await fs.open(ctx, path, pfs::OpenFlags::wr_create());
      if (!fd.ok()) co_return fd.status();
      co_return co_await fs.close(ctx, *fd);
    });
    EXPECT_TRUE(st.ok()) << path << ": " << st;
  }
  // Same-directory rename: one metadata group, one command either mode.
  st = co_await eventually(
      w.engine, [&] { return fs.rename(ctx, "/vol0/meta/f0", "/vol0/meta/g0"); });
  EXPECT_TRUE(st.ok()) << st;
  st = co_await eventually(w.engine, [&] { return fs.unlink(ctx, "/vol0/meta/f1"); });
  EXPECT_TRUE(st.ok()) << st;
  st = co_await eventually(w.engine, [&] { return fs.mkdir(ctx, "/vol0/meta/tomb"); });
  EXPECT_TRUE(st.ok()) << st;
  st = co_await eventually(w.engine, [&] { return fs.rmdir(ctx, "/vol0/meta/tomb"); });
  EXPECT_TRUE(st.ok()) << st;
}

sim::Task<void> expect_state(ChaosWorld& w, std::string path, bool want_exists) {
  const pfs::IoCtx ctx{2, 0};
  const Status st = co_await eventually(w.engine, [&]() -> sim::Task<Status> {
    co_return (co_await w.faulty.stat(ctx, path)).status();
  });
  if (want_exists) {
    EXPECT_TRUE(st.ok()) << path << ": " << st;
  } else {
    EXPECT_FALSE(st.ok()) << path << " should be gone";
    EXPECT_FALSE(st.is_transient()) << path << ": " << st;
  }
}

// unlink/rmdir/rename land the same final namespace whether the metadata
// service is a single server or a raft group, transient faults and all.
TEST(Chaos, MetaMutationsSurviveTransientFaultsInBothModes) {
  for (const bool replicated : {false, true}) {
    SCOPED_TRACE(replicated ? "raft" : "none");
    ChaosWorld w("io=0.02,busy=0.1,seed=909", replicated);
    const std::uint64_t injected_before =
        counter("plfs.fault.busy").value() + counter("plfs.fault.io_error").value();
    test::run_task(w.engine, meta_mutation_storm(w));
    test::run_task(w.engine, expect_state(w, "/vol0/meta/g0", true));
    test::run_task(w.engine, expect_state(w, "/vol0/meta/f0", false));
    test::run_task(w.engine, expect_state(w, "/vol0/meta/f1", false));
    test::run_task(w.engine, expect_state(w, "/vol0/meta/f2", true));
    test::run_task(w.engine, expect_state(w, "/vol0/meta/tomb", false));
    // The seeded plan actually hit the op stream.
    EXPECT_GT(counter("plfs.fault.busy").value() + counter("plfs.fault.io_error").value(),
              injected_before);
  }
}

// Renames that stay in one metadata group are a single replicated command;
// across groups there is no cross-log transaction, so the service must
// reject rather than half-apply.
TEST(Chaos, RaftRejectsCrossGroupRename) {
  ChaosWorld w("none", /*replicated=*/true);
  test::run_task(w.engine, [](ChaosWorld& w) -> sim::Task<void> {
    const pfs::IoCtx ctx{1, 0};
    EXPECT_TRUE((co_await w.faulty.mkdir(ctx, "/vol0/dir")).ok());
    auto fd = co_await w.faulty.open(ctx, "/vol0/dir/file", pfs::OpenFlags::wr_create_excl());
    EXPECT_TRUE(fd.ok()) << fd.status();
    if (!fd.ok()) co_return;
    EXPECT_TRUE((co_await w.faulty.close(ctx, *fd)).ok());
    EXPECT_TRUE((co_await w.faulty.rename(ctx, "/vol0/dir/file", "/vol0/dir/moved")).ok());
    const Status st = co_await w.faulty.rename(ctx, "/vol0/dir/moved", "/vol1/elsewhere");
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), Errc::invalid);
  }(w));
}

}  // namespace
}  // namespace tio::plfs
