#include "iolib/tinync.h"

#include <cstring>

namespace tio::iolib {

std::uint64_t TinyNc::total_bytes(int nprocs, const std::vector<NcVar>& vars) {
  std::uint64_t total = kHeaderBytes;
  for (const auto& v : vars) total += v.bytes_per_proc * static_cast<std::uint64_t>(nprocs);
  return total;
}

std::uint64_t TinyNc::slab_offset(int rank, int nprocs, const std::vector<NcVar>& vars,
                                  std::size_t v) {
  std::uint64_t off = kHeaderBytes;
  for (std::size_t i = 0; i < v; ++i) {
    off += vars[i].bytes_per_proc * static_cast<std::uint64_t>(nprocs);
  }
  return off + vars[v].bytes_per_proc * static_cast<std::uint64_t>(rank);
}

std::vector<std::byte> TinyNc::serialize_header(const std::vector<NcVar>& vars) {
  std::vector<std::byte> out(kHeaderBytes, std::byte{0});
  auto put = [&out](std::size_t at, const void* src, std::size_t n) {
    std::memcpy(out.data() + at, src, n);
  };
  put(0, &kMagic, 4);
  const auto nvars = static_cast<std::uint32_t>(vars.size());
  put(4, &nvars, 4);
  std::size_t at = 8;
  for (const auto& v : vars) {
    char name[24] = {};
    std::strncpy(name, v.name.c_str(), sizeof(name) - 1);
    put(at, name, 24);
    put(at + 24, &v.bytes_per_proc, 8);
    at += 32;
  }
  return out;
}

Result<std::vector<NcVar>> TinyNc::parse_header(const FragmentList& data) {
  if (data.size() < kHeaderBytes) return error(Errc::io_error, "TinyNc: short header");
  const auto bytes = data.to_bytes();
  std::uint32_t magic = 0;
  std::uint32_t nvars = 0;
  std::memcpy(&magic, bytes.data(), 4);
  std::memcpy(&nvars, bytes.data() + 4, 4);
  if (magic != kMagic) return error(Errc::io_error, "TinyNc: bad magic");
  if (8 + nvars * 32ull > kHeaderBytes) return error(Errc::io_error, "TinyNc: header overflow");
  std::vector<NcVar> vars(nvars);
  std::size_t at = 8;
  for (auto& v : vars) {
    char name[25] = {};
    std::memcpy(name, bytes.data() + at, 24);
    v.name = name;
    std::memcpy(&v.bytes_per_proc, bytes.data() + at + 24, 8);
    at += 32;
  }
  return vars;
}

sim::Task<Status> TinyNc::write_all(mpi::Comm& comm, const WriteFn& write,
                                    std::vector<NcVar> vars, std::uint64_t seed) {
  if (comm.rank() == 0) {
    TIO_CO_RETURN_IF_ERROR(co_await write(0, DataView::literal(serialize_header(vars))));
  }
  for (std::size_t v = 0; v < vars.size(); ++v) {
    const std::uint64_t off = slab_offset(comm.rank(), comm.size(), vars, v);
    TIO_CO_RETURN_IF_ERROR(
        co_await write(off, DataView::pattern(seed, off, vars[v].bytes_per_proc)));
  }
  co_await comm.barrier();
  co_return Status::Ok();
}

sim::Task<Status> TinyNc::read_all(mpi::Comm& comm, const ReadFn& read, std::uint64_t seed,
                                   bool verify, std::vector<NcVar>* vars_out) {
  std::shared_ptr<const std::vector<NcVar>> vars;
  if (comm.rank() == 0) {
    auto header = co_await read(0, kHeaderBytes);
    if (!header.ok()) co_return header.status();
    auto parsed = parse_header(*header);
    if (!parsed.ok()) co_return parsed.status();
    vars = std::make_shared<const std::vector<NcVar>>(std::move(parsed.value()));
  }
  const std::uint64_t hdr_bytes =
      co_await comm.bcast(0, vars ? std::uint64_t{32} * vars->size() : 0, 8);
  vars = co_await comm.bcast(0, std::move(vars), hdr_bytes);

  for (std::size_t v = 0; v < vars->size(); ++v) {
    const std::uint64_t off = slab_offset(comm.rank(), comm.size(), *vars, v);
    const std::uint64_t len = (*vars)[v].bytes_per_proc;
    auto slab = co_await read(off, len);
    if (!slab.ok()) co_return slab.status();
    if (slab->size() != len) co_return error(Errc::io_error, "TinyNc: short slab read");
    if (verify && !slab->content_equals(DataView::pattern(seed, off, len))) {
      co_return error(Errc::io_error, "TinyNc: slab content mismatch");
    }
  }
  if (vars_out != nullptr) *vars_out = *vars;
  co_await comm.barrier();
  co_return Status::Ok();
}

}  // namespace tio::iolib
