# Empty compiler generated dependencies file for tio_pfs.
# This may be replaced when dependencies are built.
