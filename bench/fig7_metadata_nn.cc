// Figure 7: N-N metadata performance with federated metadata servers.
//
//   7a Open time (incl. creation) vs number of files: PLFS-1/3/6/9 MDS and
//      direct access. PLFS-1 is worst (container creation through a single
//      namespace); PLFS-6 and PLFS-9 beat direct access.
//   7b Close time: more MDS lowers it, but direct stays fastest (closing is
//      light; PLFS closes also write size droppings and clean openhosts).
//
// Every direct create lands in one shared directory (one MDS serializes
// inserts); PLFS hashes containers and subdirs across the federated
// namespaces.
#include "bench_util.h"

using namespace tio;
using namespace tio::workloads;

int main(int argc, char** argv) {
  std::setlocale(LC_ALL, "");  // stdout tables honor the user's locale; JSON must not
  FlagSet flags("fig7_metadata_nn: N-N open/close times vs file count and MDS count");
  auto* procs = flags.add_i64("procs", 128, "processes creating files");
  auto* min_files = flags.add_i64("min-files", 1024, "smallest total file count in the sweep");
  auto* max_files = flags.add_i64("max-files", 8192, "largest total file count");
  auto* plan_spec = bench::add_fault_plan_flag(flags);
  const bench::MdsTuningFlags tuning = bench::add_mds_tuning_flags(flags);
  auto* replication_spec = bench::add_mds_replication_flag(flags);
  auto* shards_flag = bench::add_shards_flag(flags);
  auto* json_path = flags.add_string("json", "", "also write results to this file as JSON");
  auto* trace_path = bench::add_trace_flag(flags);
  if (auto st = flags.parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  bench::start_trace(*trace_path);
  const pfs::FaultPlan plan = bench::fault_plan_or_die(*plan_spec);
  const pfs::MdsReplication replication = bench::mds_replication_or_die(*replication_spec);
  const std::size_t shards = bench::shards_or_die(*shards_flag);
  // TIO_FIG7_MAX_FILES shrinks the storm for slow CI boxes (mirrors
  // TIO_MATRIX_RANKS for the determinism matrix); a million-file storm is a
  // bench-box run, not a smoke-test one.
  std::int64_t top_files = *max_files;
  if (const char* env = std::getenv("TIO_FIG7_MAX_FILES")) {
    const long long v = std::atoll(env);
    if (v > 0 && v < top_files) top_files = v;
  }
  std::int64_t bottom_files = std::min<std::int64_t>(*min_files, top_files);
  if (bottom_files < 1) bottom_files = 1;
  const std::vector<std::size_t> mds_counts = {1, 3, 6, 9};
  const auto file_counts =
      bench::sweep(static_cast<int>(bottom_files), static_cast<int>(top_files));

  struct Cell {
    double open, close;
  };
  std::vector<std::vector<Cell>> plfs_cells(mds_counts.size(),
                                            std::vector<Cell>(file_counts.size()));
  std::vector<Cell> direct_cells(file_counts.size());

  // One independent rig per cell; jobs are submitted in the serial bench's
  // execution order and spread across shard threads.
  sim::ShardPool pool(shards);
  const int nprocs = static_cast<int>(*procs);
  const auto storm = [&plan, &tuning, replication, nprocs](int files, std::size_t mds,
                                                           bool use_plfs) {
    MetaSpec spec;
    spec.files_per_proc = std::max(1, files / nprocs);
    spec.use_plfs = use_plfs;
    testbed::Rig::Options o = bench::lanl_rig(mds);
    o.fault_plan = plan;
    o.pfs.mds_replication = replication;
    bench::apply_mds_tuning(tuning, o.pfs);
    testbed::Rig rig(o);
    const MetaResult r = run_metadata_storm(rig, nprocs, spec);
    return Cell{r.open_s, r.close_s};
  };
  for (std::size_t f = 0; f < file_counts.size(); ++f) {
    const int files = file_counts[f];
    for (std::size_t i = 0; i < mds_counts.size(); ++i) {
      pool.submit([&storm, &plfs_cells, f, i, files, mds = mds_counts[i]] {
        plfs_cells[i][f] = storm(files, mds, /*use_plfs=*/true);
      });
    }
    // Direct N-N on the same hardware as the largest federation — the
    // extra MDS cannot help because every create is in one directory.
    pool.submit([&storm, &direct_cells, f, files, mds = mds_counts.back()] {
      direct_cells[f] = storm(files, mds, /*use_plfs=*/false);
    });
  }
  pool.run_all();

  bench::print_header("Fig. 7a — N-N Open Time (s, includes creation)",
                      "PLFS-6/PLFS-9 beat direct; PLFS-1 worst");
  Table a({"files", "PLFS-1", "PLFS-3", "PLFS-6", "PLFS-9", "W/O PLFS"});
  for (std::size_t f = 0; f < file_counts.size(); ++f) {
    a.add_row({std::to_string(file_counts[f]), Table::num(plfs_cells[0][f].open, 3),
               Table::num(plfs_cells[1][f].open, 3), Table::num(plfs_cells[2][f].open, 3),
               Table::num(plfs_cells[3][f].open, 3), Table::num(direct_cells[f].open, 3)});
  }
  a.print(std::cout);

  bench::print_header("Fig. 7b — N-N Close Time (s)",
                      "more MDS helps PLFS, but direct close stays fastest");
  Table b({"files", "PLFS-1", "PLFS-3", "PLFS-6", "PLFS-9", "W/O PLFS"});
  for (std::size_t f = 0; f < file_counts.size(); ++f) {
    b.add_row({std::to_string(file_counts[f]), Table::num(plfs_cells[0][f].close, 3),
               Table::num(plfs_cells[1][f].close, 3), Table::num(plfs_cells[2][f].close, 3),
               Table::num(plfs_cells[3][f].close, 3), Table::num(direct_cells[f].close, 3)});
  }
  b.print(std::cout);

  if (!json_path->empty()) {
    std::FILE* f = std::fopen(json_path->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open --json file: %s\n", json_path->c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig7_metadata_nn\",\n");
    std::fprintf(f,
                 "  \"config\": {\"procs\": %lld, \"min_files\": %lld, \"max_files\": %lld, "
                 "\"fault_plan\": \"%s\", \"mds_replication\": \"%.*s\", \"shards\": %zu, "
                 "\"mds_batch\": %lld, \"mds_batch_linger_us\": %lld, \"meta_lease_ms\": %lld},\n",
                 static_cast<long long>(*procs), static_cast<long long>(bottom_files),
                 static_cast<long long>(top_files), plan_spec->c_str(),
                 static_cast<int>(pfs::mds_replication_name(replication).size()),
                 pfs::mds_replication_name(replication).data(), shards,
                 static_cast<long long>(*tuning.mds_batch),
                 static_cast<long long>(*tuning.mds_batch_linger_us),
                 static_cast<long long>(*tuning.meta_lease_ms));
    std::fprintf(f, "  \"rows\": [");
    for (std::size_t f_i = 0; f_i < file_counts.size(); ++f_i) {
      std::fprintf(f, "%s\n    {\"files\": %d,\n     \"open_s\": {", f_i ? "," : "",
                   file_counts[f_i]);
      for (std::size_t i = 0; i < mds_counts.size(); ++i) {
        std::fprintf(f, "%s\"plfs%zu\": %s", i ? ", " : "", mds_counts[i],
                     json_double(plfs_cells[i][f_i].open, 6).c_str());
      }
      std::fprintf(f, ", \"direct\": %s},\n     \"close_s\": {",
                   json_double(direct_cells[f_i].open, 6).c_str());
      for (std::size_t i = 0; i < mds_counts.size(); ++i) {
        std::fprintf(f, "%s\"plfs%zu\": %s", i ? ", " : "", mds_counts[i],
                     json_double(plfs_cells[i][f_i].close, 6).c_str());
      }
      std::fprintf(f, ", \"direct\": %s}}", json_double(direct_cells[f_i].close, 6).c_str());
    }
    std::fprintf(f, "\n  ],\n");
    bench::json_counters(f);
    bench::json_histograms(f);
    std::fprintf(f, "  \"schema\": 2\n}\n");
    std::fclose(f);
  }

  bench::finish_trace(*trace_path);
  bench::print_meta_counters();
  bench::print_fault_counters();
  bench::print_histograms();
  bench::print_sim_counters();
  return 0;
}
