// Retry policy: capped exponential backoff with deterministic jitter and a
// client-wide retry budget.
//
// The policy is pure arithmetic — no clock, no shared RNG — so two runs
// with the same seed and the same operation sequence compute bit-identical
// backoff schedules regardless of event interleaving. Jitter is derived by
// hashing (seed, op_key, attempt): every operation gets its own jitter
// stream (spreading a thundering herd of retriers) without consuming state
// anywhere. The coroutine retry loops that apply the policy live next to
// their call sites (plfs); the timeout primitive lives in sim/timeout.h.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.h"
#include "common/units.h"

namespace tio {

struct RetryPolicy {
  // Total tries per operation (first attempt included). 1 = no retries.
  // Sized so an op whose early attempts are consumed by an outage window
  // (the stress preset's is 150 ms) still has several capped-backoff
  // attempts left after the window lifts — with 8 the schedule barely
  // outlasted the window and one random transient on the final attempt
  // failed the op.
  int max_attempts = 10;
  Duration initial_backoff = Duration::ms(2);
  // Capped exponential: backoff(k) = min(initial * multiplier^k, max_backoff).
  double multiplier = 2.0;
  Duration max_backoff = Duration::ms(250);
  // Fraction of the nominal backoff used as a symmetric jitter window:
  // actual = nominal * (1 + jitter * u), u deterministic in [-1, 1).
  double jitter = 0.25;
  // Per-attempt virtual-time deadline; zero disables timeouts. A timed-out
  // attempt counts as a transient failure (the in-flight op is abandoned to
  // the background, as a client deserting a stalled RPC would).
  Duration op_timeout = Duration::zero();
  // Stream seed for the deterministic jitter hash.
  std::uint64_t seed = 0x0b0ff5eed;

  // Nominal capped-exponential backoff before attempt `attempt`+1 (so the
  // first retry waits roughly initial_backoff). Saturates instead of
  // overflowing for large attempt counts.
  Duration nominal_backoff(int attempt) const {
    double ns = static_cast<double>(initial_backoff.to_ns());
    for (int i = 0; i < attempt; ++i) {
      ns *= multiplier;
      if (ns >= static_cast<double>(max_backoff.to_ns())) return max_backoff;
    }
    return std::min(Duration::ns(static_cast<std::int64_t>(ns)), max_backoff);
  }

  // Jittered backoff for retry number `attempt` (0-based) of the operation
  // identified by `op_key`. Pure function of (seed, op_key, attempt).
  Duration backoff(int attempt, std::uint64_t op_key) const {
    const Duration nominal = nominal_backoff(attempt);
    if (jitter <= 0.0) return nominal;
    const std::uint64_t h =
        splitmix64(hash_combine(seed ^ op_key, static_cast<std::uint64_t>(attempt) + 1));
    // u in [-1, 1): 53 uniform bits, shifted.
    const double u = static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
    const double ns = static_cast<double>(nominal.to_ns()) * (1.0 + jitter * u);
    return Duration::ns(std::max<std::int64_t>(0, static_cast<std::int64_t>(ns)));
  }
};

// A client-wide cap on total retries. One budget is shared by every
// operation of a client instance, so a persistent failure (dead backend,
// corrupt file) cannot degenerate into an unbounded retry storm: once the
// budget is dry, failures surface immediately. Deterministic because every
// consumer runs on the deterministic engine.
class RetryBudget {
 public:
  explicit RetryBudget(std::uint64_t total = 4096) : remaining_(total) {}

  // Takes one retry token; false when the budget is exhausted.
  bool try_consume() {
    if (remaining_ == 0) return false;
    --remaining_;
    return true;
  }
  std::uint64_t remaining() const { return remaining_; }
  void refill(std::uint64_t total) { remaining_ = total; }

 private:
  std::uint64_t remaining_;
};

}  // namespace tio
