// Collective buffering: a three-phase pipeline over ROMIO-style two-phase.
//
// The paper's LANL 3 kernel writes 1 KiB records; issued directly, those
// would drown any file system. Collective buffering (Thakur et al.,
// "Data sieving and collective I/O in ROMIO") assigns each aggregator
// process a contiguous file domain, ships everyone's records to the owning
// aggregators over the (fast, otherwise idle) interconnect, and has the
// aggregators issue large contiguous file accesses.
//
// On top of the classic two phases this layer adds:
//   * Intra-node request aggregation (Kang et al., node_agg.h): with
//     `node_aggregation` on, ranks sharing a node first coalesce their
//     chunk/range lists at a per-node leader over the (latency-only)
//     intra-node transport, and only leaders talk to aggregators — the
//     inter-node exchange carries `nodes x aggregators` messages instead
//     of `ranks x aggregators`, and each data byte crosses the fabric
//     once instead of hopping up a gather tree.
//   * A data-sieving read path (Thakur et al.): when the holes between
//     merged request runs are small relative to the useful bytes
//     (`sieve_threshold`), the aggregator reads one covering extent and
//     discards the hole bytes, trading wasted bandwidth for far fewer
//     storage operations. Write-side sieving is deliberately absent: it
//     would require read-modify-write of the hole bytes, which is unsafe
//     when another writer may own them concurrently.
//
// Writes: records are gathered to aggregators, coalesced in an extent map,
// and written in runs capped at `buffer_bytes`. Reads: requests are
// gathered, aggregators read merged (optionally sieved) ranges once, and
// slices are returned to the requesters. With `node_aggregation` off and
// `sieve_threshold` zero the wire pattern and virtual timings are
// bit-identical to the plain two-phase layer (pinned by the differential
// suite in tests/iolib/collective_test.cc).
#pragma once

#include <cstdint>
#include <vector>

#include "iolib/io_fn.h"
#include "mpisim/comm.h"

namespace tio::iolib {

struct CbConfig {
  // Number of aggregator processes (0 = one per ~cores_per_node ranks,
  // i.e. roughly one per node under block placement).
  int aggregators = 0;
  // Largest contiguous access an aggregator issues per file operation.
  std::uint64_t buffer_bytes = 4u << 20;
  // Coalesce co-resident ranks' requests at a per-node leader before the
  // inter-node exchange. Off by default: the default wire pattern matches
  // classic two-phase bit-for-bit.
  bool node_aggregation = false;
  // Read-side data sieving: an aggregator bridges a hole between two
  // request runs when the group's accumulated hole bytes stay within
  // sieve_threshold x its useful bytes. 0 disables sieving (pure list
  // I/O over the merged runs).
  double sieve_threshold = 0.0;
  // Place aggregators rack-aware (NodePlan::rack_aware_aggregators) instead
  // of the classic even stride. Off by default: the default placement (and
  // hence wire pattern) matches the pre-topology layer bit-for-bit. Only
  // changes behaviour under rack geometries where the stride and the rack
  // boundaries misalign.
  bool rack_aware_placement = false;
};

struct CbChunk {
  std::uint64_t offset = 0;
  DataView data;
};

struct CbRange {
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
  friend bool operator==(const CbRange&, const CbRange&) = default;
};

// Collective: all ranks call with their (possibly empty) chunk lists.
// `write_at` is only invoked on aggregator ranks.
sim::Task<Status> cb_write(mpi::Comm& comm, const CbConfig& config, std::vector<CbChunk> mine,
                           const WriteFn& write_at);

// Collective: satisfies each rank's `wants` (results returned in request
// order through `out`). `read_at` is only invoked on aggregator ranks.
sim::Task<Status> cb_read(mpi::Comm& comm, const CbConfig& config, std::vector<CbRange> wants,
                          const ReadFn& read_at, std::vector<FragmentList>* out);

// The aggregator rank for domain slot j of A (evenly spread over the comm,
// which lands them on distinct nodes under block placement).
int cb_aggregator_rank(int j, int num_aggregators, int comm_size);
int cb_num_aggregators(const CbConfig& config, const mpi::Comm& comm);
// The full slot -> comm-rank placement: the classic stride above, or the
// rack-aware layout when config.rack_aware_placement is set. Every rank
// computes the same vector locally (placement is shared knowledge).
std::vector<int> cb_aggregator_ranks(const CbConfig& config, const mpi::Comm& comm,
                                     int num_aggregators);

// Sieve statistics of one grouping pass.
struct CbSieveStats {
  std::uint64_t joins = 0;       // holes bridged
  std::uint64_t hole_bytes = 0;  // wasted bytes the covering reads include
};

// The sieve heuristic, exposed for unit tests: greedily groups sorted,
// disjoint, non-adjacent runs into covering extents. A hole is bridged
// when, after the join, the group's total hole bytes are <= threshold x
// its total useful bytes (so the exact-ratio boundary still joins). A
// threshold <= 0 returns the runs unchanged.
std::vector<CbRange> cb_sieve_groups(const std::vector<CbRange>& runs, double threshold,
                                     CbSieveStats* stats = nullptr);

}  // namespace tio::iolib
