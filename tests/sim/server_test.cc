#include "sim/server.h"

#include <gtest/gtest.h>

#include <vector>

namespace tio::sim {
namespace {

Task<void> client(Engine& e, FcfsServer& s, Duration service, double* done_s) {
  co_await s.serve(service);
  *done_s = e.now().to_seconds();
}

TEST(FcfsServer, SerializesWithSingleSlot) {
  Engine e;
  FcfsServer s(e, 1, "mds");
  std::vector<double> done(4, 0);
  for (int i = 0; i < 4; ++i) e.spawn(client(e, s, Duration::ms(10), &done[i]));
  e.run();
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(done[i], 0.010 * (i + 1), 1e-9);
}

TEST(FcfsServer, ParallelSlotsOverlapService) {
  Engine e;
  FcfsServer s(e, 2);
  std::vector<double> done(4, 0);
  for (int i = 0; i < 4; ++i) e.spawn(client(e, s, Duration::ms(10), &done[i]));
  e.run();
  EXPECT_NEAR(e.now().to_seconds(), 0.020, 1e-9);
}

TEST(FcfsServer, StatsAccumulate) {
  Engine e;
  FcfsServer s(e, 1);
  std::vector<double> done(3, 0);
  for (int i = 0; i < 3; ++i) e.spawn(client(e, s, Duration::ms(5), &done[i]));
  e.run();
  EXPECT_EQ(s.stats().ops, 3u);
  EXPECT_EQ(s.stats().busy.to_ns(), Duration::ms(15).to_ns());
  // Client 2 waits 5 ms, client 3 waits 10 ms.
  EXPECT_EQ(s.stats().queue_wait.to_ns(), Duration::ms(15).to_ns());
}

TEST(FcfsServer, FifoOrderUnderContention) {
  Engine e;
  FcfsServer s(e, 1);
  std::vector<int> order;
  auto c = [](FcfsServer& srv, std::vector<int>& log, int id) -> Task<void> {
    co_await srv.serve(Duration::ms(1));
    log.push_back(id);
  };
  for (int i = 0; i < 8; ++i) e.spawn(c(s, order, i));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(FcfsServer, ZeroServiceTimeStillQueues) {
  Engine e;
  FcfsServer s(e, 1);
  int served = 0;
  auto c = [](FcfsServer& srv, int* n) -> Task<void> {
    co_await srv.serve(Duration::zero());
    ++*n;
  };
  for (int i = 0; i < 100; ++i) e.spawn(c(s, &served));
  e.run();
  EXPECT_EQ(served, 100);
  EXPECT_EQ(e.now().to_ns(), 0);
}

}  // namespace
}  // namespace tio::sim
