#include "sim/sync.h"

#include <gtest/gtest.h>

#include <vector>

namespace tio::sim {
namespace {

Task<void> wait_gate(Engine& e, Gate& g, std::vector<int>& log, int id) {
  co_await g.wait();
  log.push_back(id);
  (void)e;
}

TEST(Gate, ReleasesAllWaitersOnOpen) {
  Engine e;
  Gate g(e);
  std::vector<int> log;
  for (int i = 0; i < 4; ++i) e.spawn(wait_gate(e, g, log, i));
  e.after(Duration::ms(5), [&] { g.open(); });
  e.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(e.now().to_ns(), Duration::ms(5).to_ns());
}

TEST(Gate, WaitAfterOpenCompletesImmediately) {
  Engine e;
  Gate g(e);
  g.open();
  bool done = false;
  e.spawn([](Gate& gate, bool& flag) -> Task<void> {
    co_await gate.wait();
    flag = true;
  }(g, done));
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(e.now().to_ns(), 0);
}

TEST(Gate, DoubleOpenIsIdempotent) {
  Engine e;
  Gate g(e);
  g.open();
  g.open();
  EXPECT_TRUE(g.is_open());
}

Task<void> use_sem(Engine& e, Semaphore& s, Duration hold, std::vector<int>& log, int id) {
  co_await s.acquire();
  log.push_back(id);
  co_await e.sleep(hold);
  s.release();
}

TEST(Semaphore, LimitsConcurrencyAndIsFifo) {
  Engine e;
  Semaphore s(e, 2);
  std::vector<int> log;
  for (int i = 0; i < 6; ++i) e.spawn(use_sem(e, s, Duration::ms(10), log, i));
  e.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  // 6 holders, 2 at a time, 10 ms each => 30 ms.
  EXPECT_EQ(e.now().to_ns(), Duration::ms(30).to_ns());
}

TEST(Semaphore, ReleaseWithoutWaitersRestoresPermit) {
  Engine e;
  Semaphore s(e, 1);
  std::vector<int> log;
  e.spawn(use_sem(e, s, Duration::ms(1), log, 0));
  e.run();
  EXPECT_EQ(s.available(), 1u);
  EXPECT_EQ(s.queue_length(), 0u);
}

Task<void> scoped_guard_holder(Engine& e, Semaphore& s, bool& ran) {
  co_await s.acquire();
  {
    SemGuard guard(s);
    co_await e.sleep(Duration::ms(1));
  }
  ran = s.available() == 1;
}

TEST(Semaphore, SemGuardReleasesOnScopeExit) {
  Engine e;
  Semaphore s(e, 1);
  bool ok = false;
  e.spawn(scoped_guard_holder(e, s, ok));
  e.run();
  EXPECT_TRUE(ok);
}

Task<void> locker(Engine& e, Mutex& m, int& owner, int id, bool& conflict) {
  co_await m.lock();
  if (owner != 0) conflict = true;
  owner = id;
  co_await e.sleep(Duration::us(100));
  owner = 0;
  m.unlock();
}

TEST(Mutex, ProvidesMutualExclusion) {
  Engine e;
  Mutex m(e);
  int owner = 0;
  bool conflict = false;
  for (int i = 1; i <= 10; ++i) e.spawn(locker(e, m, owner, i, conflict));
  e.run();
  EXPECT_FALSE(conflict);
  EXPECT_EQ(e.now().to_ns(), Duration::us(1000).to_ns());
}

Task<void> barrier_user(Engine& e, Barrier& b, Duration arrive_after, std::vector<std::int64_t>& exit_ns) {
  co_await e.sleep(arrive_after);
  co_await b.arrive_and_wait();
  exit_ns.push_back(e.now().to_ns());
}

TEST(Barrier, AllPartiesLeaveAtLastArrival) {
  Engine e;
  Barrier b(e, 4);
  std::vector<std::int64_t> exits;
  for (int i = 0; i < 4; ++i) e.spawn(barrier_user(e, b, Duration::ms(i), exits));
  e.run();
  ASSERT_EQ(exits.size(), 4u);
  for (const auto t : exits) EXPECT_EQ(t, Duration::ms(3).to_ns());
}

TEST(Barrier, IsReusableAcrossPhases) {
  Engine e;
  Barrier b(e, 3);
  std::vector<std::int64_t> exits;
  auto worker = [](Engine& eng, Barrier& bar, std::vector<std::int64_t>& log,
                   int id) -> Task<void> {
    co_await eng.sleep(Duration::ms(id));
    co_await bar.arrive_and_wait();  // phase 1 trips at t=2ms
    co_await eng.sleep(Duration::ms(10 - id));
    co_await bar.arrive_and_wait();  // phase 2 trips at t=12ms
    log.push_back(eng.now().to_ns());
  };
  for (int i = 0; i < 3; ++i) e.spawn(worker(e, b, exits, i));
  e.run();
  ASSERT_EQ(exits.size(), 3u);
  for (const auto t : exits) EXPECT_EQ(t, Duration::ms(12).to_ns());
}

TEST(Barrier, ZeroPartiesThrows) {
  Engine e;
  EXPECT_THROW(Barrier(e, 0), std::invalid_argument);
}

TEST(WaitGroup, WaitsForAllSubtasks) {
  Engine e;
  WaitGroup wg(e);
  std::int64_t joined_at = -1;
  auto sub = [](Engine& eng, WaitGroup& w, Duration d) -> Task<void> {
    co_await eng.sleep(d);
    w.done();
  };
  auto joiner = [](Engine& eng, WaitGroup& w, std::int64_t& t) -> Task<void> {
    co_await w.wait();
    t = eng.now().to_ns();
  };
  wg.add(3);
  for (int i = 1; i <= 3; ++i) e.spawn(sub(e, wg, Duration::ms(i)));
  e.spawn(joiner(e, wg, joined_at));
  e.run();
  EXPECT_EQ(joined_at, Duration::ms(3).to_ns());
}

TEST(WaitGroup, WaitWithNothingPendingCompletes) {
  Engine e;
  WaitGroup wg(e);
  bool done = false;
  e.spawn([](WaitGroup& w, bool& flag) -> Task<void> {
    co_await w.wait();
    flag = true;
  }(wg, done));
  e.run();
  EXPECT_TRUE(done);
}

TEST(WaitGroup, DoneWithoutAddThrows) {
  Engine e;
  WaitGroup wg(e);
  EXPECT_THROW(wg.done(), std::logic_error);
}

Task<void> producer(Engine& e, Queue<int>& q, int count) {
  for (int i = 0; i < count; ++i) {
    co_await e.sleep(Duration::ms(1));
    q.push(i);
  }
}

Task<void> consumer(Engine& e, Queue<int>& q, int count, std::vector<int>& got) {
  for (int i = 0; i < count; ++i) {
    got.push_back(co_await q.pop());
  }
  (void)e;
}

TEST(Queue, DeliversInFifoOrder) {
  Engine e;
  Queue<int> q(e);
  std::vector<int> got;
  e.spawn(producer(e, q, 5));
  e.spawn(consumer(e, q, 5, got));
  e.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Queue, PopBeforePushBlocksUntilPush) {
  Engine e;
  Queue<int> q(e);
  std::vector<int> got;
  e.spawn(consumer(e, q, 1, got));
  e.after(Duration::ms(7), [&] { q.push(42); });
  e.run();
  EXPECT_EQ(got, (std::vector<int>{42}));
  EXPECT_EQ(e.now().to_ns(), Duration::ms(7).to_ns());
}

TEST(Queue, BuffersWhenNoConsumer) {
  Engine e;
  Queue<int> q(e);
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.size(), 2u);
  std::vector<int> got;
  e.spawn(consumer(e, q, 2, got));
  e.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Queue, MultipleBlockedConsumersServedFifo) {
  Engine e;
  Queue<int> q(e);
  std::vector<std::pair<int, int>> got;  // (consumer id, value)
  auto c = [](Queue<int>& queue, std::vector<std::pair<int, int>>& log, int id) -> Task<void> {
    const int v = co_await queue.pop();
    log.emplace_back(id, v);
  };
  for (int i = 0; i < 3; ++i) e.spawn(c(q, got, i));
  e.after(Duration::ms(1), [&] {
    q.push(10);
    q.push(11);
    q.push(12);
  });
  e.run();
  EXPECT_EQ(got, (std::vector<std::pair<int, int>>{{0, 10}, {1, 11}, {2, 12}}));
}

TEST(Queue, MoveOnlyPayloads) {
  Engine e;
  Queue<std::unique_ptr<int>> q(e);
  int out = 0;
  e.spawn([](Queue<std::unique_ptr<int>>& queue, int& result) -> Task<void> {
    auto p = co_await queue.pop();
    result = *p;
  }(q, out));
  q.push(std::make_unique<int>(99));
  e.run();
  EXPECT_EQ(out, 99);
}

}  // namespace
}  // namespace tio::sim
