#include "common/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace tio {
namespace {

// Builds a mutable argv from string literals (parse skips argv[0]).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : store_(std::move(args)) {
    store_.insert(store_.begin(), "prog");
    for (auto& s : store_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> store_;
  std::vector<char*> ptrs_;
};

TEST(Flags, ParsesAllTypesWithEquals) {
  FlagSet fs;
  auto* n = fs.add_i64("n", 1, "count");
  auto* r = fs.add_f64("rate", 0.5, "rate");
  auto* v = fs.add_bool("verbose", false, "verbosity");
  auto* s = fs.add_string("name", "x", "name");
  Argv a({"--n=42", "--rate=2.5", "--verbose=true", "--name=plfs"});
  ASSERT_TRUE(fs.parse(a.argc(), a.argv()).ok());
  EXPECT_EQ(*n, 42);
  EXPECT_DOUBLE_EQ(*r, 2.5);
  EXPECT_TRUE(*v);
  EXPECT_EQ(*s, "plfs");
}

TEST(Flags, ParsesSpaceSeparatedValues) {
  FlagSet fs;
  auto* n = fs.add_i64("n", 1, "count");
  Argv a({"--n", "17"});
  ASSERT_TRUE(fs.parse(a.argc(), a.argv()).ok());
  EXPECT_EQ(*n, 17);
}

TEST(Flags, BoolShorthandAndNegation) {
  FlagSet fs;
  auto* v = fs.add_bool("verbose", false, "");
  auto* w = fs.add_bool("cache", true, "");
  Argv a({"--verbose", "--no-cache"});
  ASSERT_TRUE(fs.parse(a.argc(), a.argv()).ok());
  EXPECT_TRUE(*v);
  EXPECT_FALSE(*w);
}

TEST(Flags, UnknownFlagIsError) {
  FlagSet fs;
  Argv a({"--bogus=1"});
  EXPECT_EQ(fs.parse(a.argc(), a.argv()).code(), Errc::invalid);
}

TEST(Flags, BadIntValueIsError) {
  FlagSet fs;
  fs.add_i64("n", 1, "");
  Argv a({"--n=twelve"});
  EXPECT_EQ(fs.parse(a.argc(), a.argv()).code(), Errc::invalid);
}

TEST(Flags, MissingValueIsError) {
  FlagSet fs;
  fs.add_i64("n", 1, "");
  Argv a({"--n"});
  EXPECT_EQ(fs.parse(a.argc(), a.argv()).code(), Errc::invalid);
}

TEST(Flags, DefaultsSurviveEmptyArgv) {
  FlagSet fs;
  auto* n = fs.add_i64("n", 7, "");
  Argv a({});
  ASSERT_TRUE(fs.parse(a.argc(), a.argv()).ok());
  EXPECT_EQ(*n, 7);
}

TEST(Flags, UsageMentionsFlagsAndDefaults) {
  FlagSet fs("my tool");
  fs.add_i64("procs", 64, "process count");
  const std::string u = fs.usage();
  EXPECT_NE(u.find("procs"), std::string::npos);
  EXPECT_NE(u.find("64"), std::string::npos);
  EXPECT_NE(u.find("my tool"), std::string::npos);
}

}  // namespace
}  // namespace tio
