#include "workloads/harness.h"

#include <stdexcept>

#include "common/trace.h"

namespace tio::workloads {

std::uint64_t total_bytes(const OpGen& gen, int nprocs) {
  std::uint64_t total = 0;
  for (int r = 0; r < nprocs; ++r) {
    for (const auto& op : gen(r, nprocs)) total += op.len;
  }
  return total;
}

namespace {

[[noreturn]] void fail(const std::string& what, const Status& status) {
  throw std::runtime_error("workload " + what + " failed: " + status.to_string());
}

// One bulk-synchronous phase: barrier, open, barrier, body, barrier, close
// (collective). Rank 0 records the three segment times.
sim::Task<void> run_phase(TargetFactory& factory, mpi::Comm comm, const JobSpec& spec,
                          bool writing, PhaseTimes* out) {
  sim::Engine& engine = comm.engine();
  co_await comm.barrier();
  const TimePoint t0 = engine.now();

  // Barrier-to-barrier phase spans on every rank: each matches the reported
  // segment times (which rank 0 records below) to within the final barrier's
  // skew, so a trace consumer can cross-check per-phase sums against them.
  // The open span is named by direction: a read-mode open runs the index
  // aggregation whose plfs.open.* phases tooling (tools/check_trace.py)
  // reconciles against this window, a write-mode open runs the create path.
  static const trace::SpanSite kOpenWriteSite("harness", "harness.open_write");
  static const trace::SpanSite kOpenReadSite("harness", "harness.open_read");
  static const trace::SpanSite kIoSite("harness", "harness.io");
  static const trace::SpanSite kCloseSite("harness", "harness.close");
  trace::Span open_span(engine, writing ? kOpenWriteSite : kOpenReadSite, comm.global_rank());

  // NOTE: deliberately not a conditional expression around co_await — GCC 12
  // destroys the awaited temporary too early in that construct.
  std::unique_ptr<Target> target;
  if (writing) {
    auto opened = co_await factory.open_write(comm, spec.file, spec.target);
    if (!opened.ok()) fail("open_write", opened.status());
    target = std::move(opened.value());
  } else {
    auto opened = co_await factory.open_read(comm, spec.file, spec.target);
    if (!opened.ok()) fail("open_read", opened.status());
    target = std::move(opened.value());
  }
  co_await comm.barrier();
  const TimePoint t1 = engine.now();
  open_span.end();
  trace::Span io_span(engine, kIoSite, comm.global_rank());

  const PhaseFn& custom = writing ? spec.write_fn : spec.read_fn;
  if (custom) {
    const Status st = co_await custom(comm, *target);
    if (!st.ok()) fail("custom phase", st);
  } else {
    const OpGen& gen = (!writing && spec.read_ops) ? spec.read_ops : spec.ops;
    for (const auto& op : gen(comm.rank(), comm.size())) {
      if (writing) {
        const Status st =
            co_await target->write(op.offset, DataView::pattern(spec.seed, op.offset, op.len));
        if (!st.ok()) fail("write", st);
      } else {
        auto data = co_await target->read(op.offset, op.len);
        if (!data.ok()) fail("read", data.status());
        if (data->size() != op.len) {
          fail("read", error(Errc::io_error, "short read"));
        }
        if (spec.verify &&
            !data->content_equals(DataView::pattern(spec.seed, op.offset, op.len))) {
          fail("verify", error(Errc::io_error, "content mismatch"));
        }
      }
    }
  }
  co_await comm.barrier();
  const TimePoint t2 = engine.now();
  io_span.end();
  trace::Span close_span(engine, kCloseSite, comm.global_rank());

  const Status st = co_await target->close();  // collective
  if (!st.ok()) fail("close", st);
  const TimePoint t3 = engine.now();
  close_span.end();

  if (comm.rank() == 0 && out != nullptr) {
    out->open_s = (t1 - t0).to_seconds();
    out->io_s = (t2 - t1).to_seconds();
    out->close_s = (t3 - t2).to_seconds();
  }
}

}  // namespace

JobResult run_job(testbed::Rig& rig, int nprocs, const JobSpec& spec) {
  TargetFactory factory(rig.plfs(), rig.direct_dir());
  JobResult result;
  const std::uint64_t bytes =
      spec.bytes_override > 0 ? spec.bytes_override : (spec.ops ? total_bytes(spec.ops, nprocs) : 0);

  if (spec.do_write) {
    mpi::run_spmd(rig.cluster(), nprocs, [&](mpi::Comm comm) -> sim::Task<void> {
      co_await run_phase(factory, std::move(comm), spec, /*writing=*/true, &result.write);
    });
    result.write.bytes = bytes;
  }
  if (spec.do_read) {
    if (spec.drop_caches_before_read) rig.pfs().drop_caches();
    const int readers = spec.read_nprocs > 0 ? spec.read_nprocs : nprocs;
    const std::uint64_t read_bytes =
        spec.bytes_override > 0
            ? spec.bytes_override
            : total_bytes(spec.read_ops ? spec.read_ops : spec.ops, readers);
    mpi::run_spmd(rig.cluster(), readers, [&](mpi::Comm comm) -> sim::Task<void> {
      co_await run_phase(factory, std::move(comm), spec, /*writing=*/false, &result.read);
    });
    result.read.bytes = read_bytes;
  }
  return result;
}

}  // namespace tio::workloads
