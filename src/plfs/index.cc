#include "plfs/index.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>

#include "plfs/mount.h"
#include "plfs/pattern.h"

namespace tio::plfs {

bool entry_timestamp_less(const IndexEntry& a, const IndexEntry& b) {
  if (a.timestamp_ns != b.timestamp_ns) return a.timestamp_ns < b.timestamp_ns;
  if (a.writer != b.writer) return a.writer < b.writer;
  return a.physical_offset < b.physical_offset;
}

void append_serialized(std::vector<std::byte>& out, const IndexEntry& entry) {
  const std::size_t base = out.size();
  out.resize(base + IndexEntry::kSerializedSize);
  auto put = [&out](std::size_t at, const void* src, std::size_t n) {
    std::memcpy(out.data() + at, src, n);
  };
  put(base + 0, &entry.logical_offset, 8);
  put(base + 8, &entry.length, 8);
  put(base + 16, &entry.physical_offset, 8);
  put(base + 24, &entry.timestamp_ns, 8);
  put(base + 32, &entry.writer, 4);
  const std::uint32_t pad = 0;
  put(base + 36, &pad, 4);
}

std::vector<std::byte> serialize_entries(const std::vector<IndexEntry>& entries) {
  std::vector<std::byte> out;
  out.reserve(entries.size() * IndexEntry::kSerializedSize);
  for (const auto& e : entries) append_serialized(out, e);
  return out;
}

Result<std::vector<IndexEntry>> deserialize_entries(const FragmentList& data) {
  if (data.size() % IndexEntry::kSerializedSize != 0) {
    // A truncated trailing record: report where the partial record starts so
    // operators can tell a torn append from wholesale corruption.
    const std::uint64_t partial_at =
        data.size() - data.size() % IndexEntry::kSerializedSize;
    return error(Errc::io_error,
                 "truncated index log: " + std::to_string(data.size()) +
                     " bytes is not a multiple of the " +
                     std::to_string(IndexEntry::kSerializedSize) +
                     "-byte record size; partial record begins at byte offset " +
                     std::to_string(partial_at));
  }
  const auto bytes = data.to_bytes();
  std::vector<IndexEntry> out(bytes.size() / IndexEntry::kSerializedSize);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::byte* p = bytes.data() + i * IndexEntry::kSerializedSize;
    std::memcpy(&out[i].logical_offset, p + 0, 8);
    std::memcpy(&out[i].length, p + 8, 8);
    std::memcpy(&out[i].physical_offset, p + 16, 8);
    std::memcpy(&out[i].timestamp_ns, p + 24, 8);
    std::memcpy(&out[i].writer, p + 32, 4);
    const IndexEntry& e = out[i];
    const std::string at = " at record #" + std::to_string(i) + " (byte offset " +
                           std::to_string(i * IndexEntry::kSerializedSize) + ")";
    if (e.length == 0) {
      return error(Errc::io_error, "corrupt index log: zero-length record" + at);
    }
    if (e.logical_offset + e.length < e.logical_offset ||
        e.physical_offset + e.length < e.physical_offset) {
      return error(Errc::io_error, "corrupt index log: extent overflow" + at);
    }
  }
  return out;
}

std::uint64_t IndexView::serialized_bytes(WireFormat wire) const {
  if (wire == WireFormat::v1) return serialized_bytes();
  if (mapping_count() == 0) return 0;
  if (wire_v2_bytes_ == 0) wire_v2_bytes_ = encoded_size(to_entries(), WireFormat::v2);
  return wire_v2_bytes_;
}

namespace {

// Synthetic resolution-sequence timestamps (see the to_entries() contract
// in index.h): position in logical order.
void stamp_resolution_sequence(std::vector<IndexEntry>& entries) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].timestamp_ns = static_cast<std::int64_t>(i);
  }
}

}  // namespace

// --- BTreeIndex ---

BTreeIndex BTreeIndex::build(std::vector<IndexEntry> entries, bool compress) {
  std::sort(entries.begin(), entries.end(), entry_timestamp_less);
  return from_sorted(entries, compress);
}

BTreeIndex BTreeIndex::from_sorted(const std::vector<IndexEntry>& sorted, bool compress) {
  BTreeIndex idx;
  for (const auto& e : sorted) idx.insert(e, compress);
  return idx;
}

void BTreeIndex::insert(const IndexEntry& e, bool compress) {
  if (e.length == 0) return;
  const std::uint64_t start = e.logical_offset;
  const std::uint64_t end = start + e.length;

  // Trim or split whatever the new (later-timestamped) entry overlaps.
  auto it = map_.upper_bound(start);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    const std::uint64_t prev_end = prev->first + prev->second.length;
    if (prev_end > start) {
      Mapping old = prev->second;
      prev->second.length = start - prev->first;
      if (prev->second.length == 0) map_.erase(prev);
      if (prev_end > end) {
        Mapping tail = old;
        tail.logical_offset = end;
        tail.length = prev_end - end;
        tail.physical_offset = old.physical_offset + (end - old.logical_offset);
        map_.emplace(end, tail);
      }
    }
  }
  it = map_.lower_bound(start);
  while (it != map_.end() && it->first < end) {
    const std::uint64_t ext_end = it->first + it->second.length;
    if (ext_end <= end) {
      it = map_.erase(it);
    } else {
      Mapping tail = it->second;
      tail.logical_offset = end;
      tail.length = ext_end - end;
      tail.physical_offset += end - it->first;
      map_.erase(it);
      map_.emplace(end, tail);
      break;
    }
  }

  Mapping m{start, e.length, e.writer, e.physical_offset};
  // Compression: merge with a same-writer predecessor that is contiguous
  // both logically and physically.
  auto next = map_.lower_bound(start);
  if (compress && next != map_.begin()) {
    auto prev = std::prev(next);
    if (prev->second.writer == m.writer &&
        prev->first + prev->second.length == start &&
        prev->second.physical_offset + prev->second.length == m.physical_offset) {
      prev->second.length += m.length;
      return;
    }
  }
  map_.emplace(start, m);
}

std::vector<IndexView::Mapping> BTreeIndex::lookup(std::uint64_t offset, std::uint64_t len) const {
  std::vector<Mapping> out;
  if (len == 0) return out;
  const std::uint64_t end = offset + len;
  auto it = map_.upper_bound(offset);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > offset) it = prev;
  }
  for (; it != map_.end() && it->first < end; ++it) {
    const std::uint64_t m_start = std::max(offset, it->first);
    const std::uint64_t m_end = std::min(end, it->first + it->second.length);
    Mapping m = it->second;
    m.physical_offset += m_start - it->first;
    m.logical_offset = m_start;
    m.length = m_end - m_start;
    out.push_back(m);
  }
  return out;
}

std::uint64_t BTreeIndex::logical_size() const {
  if (map_.empty()) return 0;
  const auto& last = *map_.rbegin();
  return last.first + last.second.length;
}

std::vector<IndexEntry> BTreeIndex::to_entries() const {
  std::vector<IndexEntry> out;
  out.reserve(map_.size());
  for (const auto& [off, m] : map_) {
    out.push_back(IndexEntry{off, m.length, m.physical_offset, 0, m.writer});
  }
  stamp_resolution_sequence(out);
  return out;
}

// --- offset-domain sweep (shared by FlatIndex and PatternIndex) ---

std::vector<IndexView::Mapping> resolve_sorted_entries(const std::vector<IndexEntry>& sorted,
                                                       bool compress) {
  using Mapping = IndexView::Mapping;
  std::vector<Mapping> mappings;
  const std::size_t n = sorted.size();
  // Offset-domain sweep. Boundaries are every extent start and end; within
  // one boundary segment the winning entry is constant, and the winner is
  // the live entry latest in timestamp order — which, because `sorted` is in
  // entry_timestamp_less order, is simply the live entry with the largest
  // position. Everything below is contiguous vectors + an array heap.
  std::vector<std::uint64_t> bounds;
  bounds.reserve(2 * n);
  std::vector<std::uint32_t> by_start;
  by_start.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (sorted[i].length == 0) continue;
    by_start.push_back(static_cast<std::uint32_t>(i));
    bounds.push_back(sorted[i].logical_offset);
    bounds.push_back(sorted[i].logical_offset + sorted[i].length);
  }
  if (by_start.empty()) return mappings;
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  std::sort(by_start.begin(), by_start.end(), [&sorted](std::uint32_t a, std::uint32_t b) {
    return sorted[a].logical_offset < sorted[b].logical_offset;
  });

  // Max-heap of live entries by position; stale (already-ended) entries are
  // removed lazily when they surface at the top.
  std::vector<std::uint32_t> heap;
  std::size_t next_start = 0;
  std::uint32_t last_won = std::numeric_limits<std::uint32_t>::max();
  mappings.reserve(by_start.size());
  for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
    const std::uint64_t x = bounds[b];
    while (next_start < by_start.size() &&
           sorted[by_start[next_start]].logical_offset == x) {
      heap.push_back(by_start[next_start++]);
      std::push_heap(heap.begin(), heap.end());
    }
    while (!heap.empty()) {
      const IndexEntry& top = sorted[heap.front()];
      if (top.logical_offset + top.length > x) break;
      std::pop_heap(heap.begin(), heap.end());
      heap.pop_back();
    }
    if (heap.empty()) continue;  // unwritten gap
    const std::uint64_t nx = bounds[b + 1];
    const std::uint32_t won = heap.front();
    const IndexEntry& e = sorted[won];
    if (won == last_won && !mappings.empty() &&
        mappings.back().logical_offset + mappings.back().length == x) {
      mappings.back().length += nx - x;
    } else {
      mappings.push_back(
          Mapping{x, nx - x, e.writer, e.physical_offset + (x - e.logical_offset)});
    }
    last_won = won;
  }

  if (compress && !mappings.empty()) {
    std::size_t w = 0;
    for (std::size_t i = 1; i < mappings.size(); ++i) {
      Mapping& back = mappings[w];
      const Mapping& m = mappings[i];
      if (back.writer == m.writer && back.logical_offset + back.length == m.logical_offset &&
          back.physical_offset + back.length == m.physical_offset) {
        back.length += m.length;
      } else {
        mappings[++w] = m;
      }
    }
    mappings.resize(w + 1);
  }
  return mappings;
}

FlatIndex FlatIndex::from_sorted(const std::vector<IndexEntry>& sorted, bool compress) {
  FlatIndex idx;
  idx.mappings_ = resolve_sorted_entries(sorted, compress);
  return idx;
}

FlatIndex FlatIndex::build(std::vector<IndexEntry> entries, bool compress) {
  std::sort(entries.begin(), entries.end(), entry_timestamp_less);
  return from_sorted(entries, compress);
}

std::vector<IndexView::Mapping> FlatIndex::lookup(std::uint64_t offset, std::uint64_t len) const {
  std::vector<Mapping> out;
  if (len == 0 || mappings_.empty()) return out;
  const std::uint64_t end = offset + len;
  // First mapping whose end is past `offset`.
  auto it = std::partition_point(mappings_.begin(), mappings_.end(), [offset](const Mapping& m) {
    return m.logical_offset + m.length <= offset;
  });
  for (; it != mappings_.end() && it->logical_offset < end; ++it) {
    const std::uint64_t m_start = std::max(offset, it->logical_offset);
    const std::uint64_t m_end = std::min(end, it->logical_offset + it->length);
    Mapping m = *it;
    m.physical_offset += m_start - it->logical_offset;
    m.logical_offset = m_start;
    m.length = m_end - m_start;
    out.push_back(m);
  }
  return out;
}

std::uint64_t FlatIndex::logical_size() const {
  if (mappings_.empty()) return 0;
  return mappings_.back().logical_offset + mappings_.back().length;
}

std::vector<IndexEntry> FlatIndex::to_entries() const {
  std::vector<IndexEntry> out;
  out.reserve(mappings_.size());
  for (const auto& m : mappings_) {
    out.push_back(IndexEntry{m.logical_offset, m.length, m.physical_offset, 0, m.writer});
  }
  stamp_resolution_sequence(out);
  return out;
}

}  // namespace tio::plfs
