// FaultyFs: plan parsing, deterministic injection, torn writes, outage
// windows, and the crash-on-close of flattened index files.
#include "pfs/faulty_fs.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/stats.h"
#include "net/cluster.h"
#include "pfs/sim_pfs.h"
#include "testutil.h"

namespace tio::pfs {
namespace {

net::ClusterConfig test_cluster() {
  net::ClusterConfig c;
  c.nodes = 4;
  c.cores_per_node = 4;
  return c;
}

PfsConfig test_pfs() {
  PfsConfig c;
  c.num_mds = 2;
  c.num_osts = 4;
  return c;
}

// --- plan parsing ---

TEST(FaultPlan, DefaultAndNonePresetAreDisabled) {
  EXPECT_FALSE(FaultPlan{}.enabled());
  auto plan = FaultPlan::parse("none");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->enabled());
  auto empty = FaultPlan::parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->enabled());
}

TEST(FaultPlan, Transient1PresetSetsOnePercentAcrossClasses) {
  auto plan = FaultPlan::parse("transient1");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->enabled());
  for (std::size_t i = 0; i < kNumOpClasses; ++i) {
    EXPECT_DOUBLE_EQ(plan->ops[i].p_io_error, 0.005);
    EXPECT_DOUBLE_EQ(plan->ops[i].p_busy, 0.005);
    EXPECT_DOUBLE_EQ(plan->ops[i].p_stale, 0.0);
  }
  EXPECT_DOUBLE_EQ(plan->p_torn_write, 0.0);
  EXPECT_FALSE(plan->crash_close_index);
}

TEST(FaultPlan, StressPresetHasOutageAndCrashClose) {
  auto plan = FaultPlan::parse("stress");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->crash_close_index);
  EXPECT_GT(plan->p_torn_write, 0.0);
  ASSERT_EQ(plan->outages.size(), 1u);
  EXPECT_EQ(plan->outages[0].path_prefix, "/vol1");
  EXPECT_EQ((plan->outages[0].end - plan->outages[0].begin).to_ms(), 150.0);
}

TEST(FaultPlan, PresetExtendedByKeyValues) {
  auto plan = FaultPlan::parse("stress,seed=9,torn=0.5");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->seed, 9u);
  EXPECT_DOUBLE_EQ(plan->p_torn_write, 0.5);
  EXPECT_TRUE(plan->crash_close_index);  // preset fields survive
}

TEST(FaultPlan, KeyValueGrammar) {
  auto plan = FaultPlan::parse(
      "seed=77,io=0.25,write.busy=0.5,spike=0.1,spike_ms=30,outage=/volX@100-250");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->seed, 77u);
  EXPECT_DOUBLE_EQ(plan->spec(OpClass::read).p_io_error, 0.25);
  EXPECT_DOUBLE_EQ(plan->spec(OpClass::write).p_busy, 0.5);
  EXPECT_DOUBLE_EQ(plan->spec(OpClass::meta).p_busy, 0.0);
  EXPECT_EQ(plan->spec(OpClass::open).spike.to_ms(), 30.0);
  ASSERT_EQ(plan->outages.size(), 1u);
  EXPECT_EQ(plan->outages[0].path_prefix, "/volX");
  EXPECT_EQ((plan->outages[0].begin - TimePoint()).to_ms(), 100.0);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::parse("chaos").ok());            // unknown preset
  EXPECT_FALSE(FaultPlan::parse("frobnicate=1").ok());     // unknown key
  EXPECT_FALSE(FaultPlan::parse("io=lots").ok());          // not a number
  EXPECT_FALSE(FaultPlan::parse("io=-0.5").ok());          // negative
  EXPECT_FALSE(FaultPlan::parse("write.banana=0.1").ok()); // unknown field
  EXPECT_FALSE(FaultPlan::parse("scrub.io=0.1").ok());     // unknown class
  EXPECT_FALSE(FaultPlan::parse("outage=/vol1").ok());     // no window
  EXPECT_FALSE(FaultPlan::parse("outage=/vol1@50-10").ok());  // end < begin
  EXPECT_FALSE(FaultPlan::parse("crash_close_index=2").ok());
}

TEST(FaultPlan, ToStringRoundTripsThroughParse) {
  auto plan = FaultPlan::parse("stress,seed=123");
  ASSERT_TRUE(plan.ok());
  auto again = FaultPlan::parse(plan->to_string());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->to_string(), plan->to_string());
}

// --- server-targeted faults (replicated MDS) ---

TEST(FaultPlan, ServerOutageGrammar) {
  auto plan = FaultPlan::parse("server_outage=2:leader@100-250,server_outage=0:1@50-60");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->server_outages.size(), 2u);
  EXPECT_EQ(plan->server_outages[0].mds, 2);
  EXPECT_EQ(plan->server_outages[0].replica, -1);  // "leader": resolved at window open
  EXPECT_EQ((plan->server_outages[0].begin - TimePoint()).to_ms(), 100.0);
  EXPECT_EQ((plan->server_outages[0].end - TimePoint()).to_ms(), 250.0);
  EXPECT_EQ(plan->server_outages[1].mds, 0);
  EXPECT_EQ(plan->server_outages[1].replica, 1);
  EXPECT_TRUE(plan->enabled());
}

TEST(FaultPlan, PartitionGrammar) {
  auto plan = FaultPlan::parse("partition=3@10-20");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->partitions.size(), 1u);
  EXPECT_EQ(plan->partitions[0].mds, 3);
  EXPECT_EQ((plan->partitions[0].begin - TimePoint()).to_ms(), 10.0);
  EXPECT_EQ((plan->partitions[0].end - TimePoint()).to_ms(), 20.0);
  EXPECT_TRUE(plan->enabled());
}

TEST(FaultPlan, RejectsMalformedServerFaults) {
  EXPECT_FALSE(FaultPlan::parse("server_outage=1@100-250").ok());        // no replica
  EXPECT_FALSE(FaultPlan::parse("server_outage=1:boss@100-250").ok());   // bad replica
  EXPECT_FALSE(FaultPlan::parse("server_outage=1:leader@250-100").ok()); // end < begin
  EXPECT_FALSE(FaultPlan::parse("partition=1").ok());                    // no window
  EXPECT_FALSE(FaultPlan::parse("partition=x@10-20").ok());              // bad group
}

TEST(FaultPlan, ServerFaultsRoundTripThroughToString) {
  auto plan = FaultPlan::parse("server_outage=1:leader@100-250,partition=2@300-400,seed=9");
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto again = FaultPlan::parse(plan->to_string());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->to_string(), plan->to_string());
  ASSERT_EQ(again->server_outages.size(), 1u);
  EXPECT_EQ(again->server_outages[0].replica, -1);
  ASSERT_EQ(again->partitions.size(), 1u);
}

TEST(FaultPlan, LoweredForUnreplicatedTurnsServerFaultsIntoVolumeOutages) {
  auto plan = FaultPlan::parse("server_outage=1:leader@100-250,partition=2@300-400");
  ASSERT_TRUE(plan.ok()) << plan.status();
  const FaultPlan lowered = plan->lowered_for_unreplicated();
  EXPECT_TRUE(lowered.server_outages.empty());
  EXPECT_TRUE(lowered.partitions.empty());
  ASSERT_EQ(lowered.outages.size(), 2u);
  EXPECT_EQ(lowered.outages[0].path_prefix, "/vol1");
  EXPECT_EQ((lowered.outages[0].begin - TimePoint()).to_ms(), 100.0);
  EXPECT_EQ(lowered.outages[1].path_prefix, "/vol2");
  EXPECT_EQ((lowered.outages[1].end - TimePoint()).to_ms(), 400.0);
  EXPECT_TRUE(lowered.enabled());
}

TEST(FaultPlan, FailoverPresetTargetsTheLeader) {
  auto plan = FaultPlan::parse("failover");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->server_outages.size(), 1u);
  EXPECT_EQ(plan->server_outages[0].mds, 1);
  EXPECT_EQ(plan->server_outages[0].replica, -1);
}

// --- injection behaviour ---

class FaultyFsTest : public ::testing::Test {
 protected:
  FaultyFsTest() : cluster_(engine_, test_cluster()), base_(cluster_, test_pfs()) {}

  FaultyFs make(const std::string& spec) {
    auto plan = FaultPlan::parse(spec);
    if (!plan.ok()) std::abort();
    return FaultyFs(base_, std::move(plan.value()));
  }

  sim::Engine engine_;
  net::Cluster cluster_;
  SimPfs base_;
  IoCtx ctx_{0, 0};
};

TEST_F(FaultyFsTest, DisabledPlanForwardsEverything) {
  FaultyFs fs = make("none");
  test::run_task(engine_, [](FaultyFs& fs, IoCtx ctx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/d")).ok());
    auto fd = co_await fs.open(ctx, "/d/f", OpenFlags::wr_create());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) co_return;
    auto n = co_await fs.write(ctx, *fd, 0, DataView::pattern(1, 0, 4096));
    EXPECT_TRUE(n.ok());
    if (!n.ok()) co_return;
    EXPECT_EQ(*n, 4096u);
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
    auto rfd = co_await fs.open(ctx, "/d/f", OpenFlags::ro());
    EXPECT_TRUE(rfd.ok());
    if (!rfd.ok()) co_return;
    auto fl = co_await fs.read(ctx, *rfd, 0, 4096);
    EXPECT_TRUE(fl.ok());
    if (!fl.ok()) co_return;
    EXPECT_TRUE(fl->content_equals(DataView::pattern(1, 0, 4096)));
    EXPECT_TRUE((co_await fs.close(ctx, *rfd)).ok());
  }(fs, ctx_));
}

// Runs a fixed op sequence and returns the error-code trace.
std::vector<Errc> error_trace(sim::Engine& engine, FaultyFs& fs, IoCtx ctx) {
  std::vector<Errc> trace;
  test::run_task(engine,
                 [](FaultyFs& fs, IoCtx ctx, std::vector<Errc>& trace) -> sim::Task<void> {
                   (void)co_await fs.mkdir(ctx, "/t");
                   for (int i = 0; i < 200; ++i) {
                     const std::string path = "/t/f" + std::to_string(i % 10);
                     auto fd = co_await fs.open(ctx, path, OpenFlags::wr_create());
                     trace.push_back(fd.status().code());
                     if (!fd.ok()) continue;
                     auto n = co_await fs.write(ctx, *fd, 0, DataView::pattern(2, 0, 1000));
                     trace.push_back(n.status().code());
                     trace.push_back((co_await fs.close(ctx, *fd)).code());
                   }
                 }(fs, ctx, trace));
  return trace;
}

TEST_F(FaultyFsTest, SameSeedSameWorkloadSameFaultSchedule) {
  const char* spec = "io=0.05,busy=0.05,stale=0.02,torn=0.1,seed=424242";
  std::vector<std::vector<Errc>> traces;
  for (int run = 0; run < 2; ++run) {
    sim::Engine engine;
    net::Cluster cluster(engine, test_cluster());
    SimPfs base(cluster, test_pfs());
    auto plan = FaultPlan::parse(spec);
    ASSERT_TRUE(plan.ok());
    FaultyFs fs(base, std::move(plan.value()));
    traces.push_back(error_trace(engine, fs, IoCtx{0, 0}));
  }
  EXPECT_EQ(traces[0], traces[1]);
  // The schedule actually injected something (the test is not vacuous).
  bool any_fault = false;
  for (const Errc e : traces[0]) any_fault |= e != Errc::ok;
  EXPECT_TRUE(any_fault);
}

TEST_F(FaultyFsTest, DifferentSeedsDiverge) {
  std::vector<std::vector<Errc>> traces;
  for (const char* spec : {"io=0.05,busy=0.05,seed=1", "io=0.05,busy=0.05,seed=2"}) {
    sim::Engine engine;
    net::Cluster cluster(engine, test_cluster());
    SimPfs base(cluster, test_pfs());
    auto plan = FaultPlan::parse(spec);
    ASSERT_TRUE(plan.ok());
    FaultyFs fs(base, std::move(plan.value()));
    traces.push_back(error_trace(engine, fs, IoCtx{0, 0}));
  }
  EXPECT_NE(traces[0], traces[1]);
}

TEST_F(FaultyFsTest, TornWriteDeliversStrictPrefix) {
  FaultyFs fs = make("torn=1");  // every multi-byte write is torn
  test::run_task(engine_, [](FaultyFs& fs, IoCtx ctx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/d")).ok());
    auto fd = co_await fs.open(ctx, "/d/f",
                               OpenFlags{.read = true, .write = true, .create = true});
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) co_return;
    const DataView data = DataView::pattern(3, 0, 1 << 12);
    auto n = co_await fs.write(ctx, *fd, 0, data);
    EXPECT_TRUE(n.ok());
    if (!n.ok()) co_return;
    EXPECT_GE(*n, 1u);
    EXPECT_LT(*n, data.size());  // strict prefix
    if (*n == 0 || *n >= data.size()) co_return;
    // The prefix that was acknowledged is really there, byte-for-byte.
    auto fl = co_await fs.read(ctx, *fd, 0, *n);
    EXPECT_TRUE(fl.ok());
    if (!fl.ok()) co_return;
    EXPECT_TRUE(fl->content_equals(data.slice(0, *n)));
    // Resuming from the short count completes the write (any finite tear
    // sequence terminates because every tear makes progress).
    std::uint64_t done = *n;
    while (done < data.size()) {
      auto more = co_await fs.write(ctx, *fd, done, data.slice(done, data.size() - done));
      EXPECT_TRUE(more.ok());
      if (!more.ok() || *more == 0) co_return;
      done += *more;
    }
    auto all = co_await fs.read(ctx, *fd, 0, data.size());
    EXPECT_TRUE(all.ok());
    if (!all.ok()) co_return;
    EXPECT_TRUE(all->content_equals(data));
    EXPECT_TRUE((co_await fs.close(ctx, *fd)).ok());
  }(fs, ctx_));
}

TEST_F(FaultyFsTest, OutageWindowFailsMatchingPrefixOnly) {
  FaultyFs fs = make("outage=/vol1@100-200");
  test::run_task(engine_, [](FaultyFs& fs, IoCtx ctx, sim::Engine& engine) -> sim::Task<void> {
    // Before the window: everything works.
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/vol1")).ok());
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/vol2")).ok());
    co_await engine.sleep(TimePoint::from_ns(Duration::ms(150).to_ns()) - engine.now());
    // Inside the window: the /vol1 namespace is down, /vol2 unaffected.
    const Status down = co_await fs.mkdir(ctx, "/vol1/a");
    EXPECT_EQ(down.code(), Errc::busy);
    EXPECT_TRUE(down.is_transient());
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/vol2/a")).ok());
    co_await engine.sleep(TimePoint::from_ns(Duration::ms(200).to_ns()) - engine.now());
    // After the window: recovered.
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/vol1/a")).ok());
  }(fs, ctx_, engine_));
}

TEST_F(FaultyFsTest, CrashOnCloseTearsIndexTailOnce) {
  FaultyFs fs = make("crash_close_index=1");
  const std::uint64_t before = counter("plfs.fault.crash_close").value();
  test::run_task(engine_, [](FaultyFs& fs, IoCtx ctx) -> sim::Task<void> {
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/c")).ok());
    const DataView data = DataView::pattern(4, 0, 4096);
    auto fd = co_await fs.open(ctx, "/c/global.index", OpenFlags::wr_create());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) co_return;
    EXPECT_TRUE((co_await fs.write(ctx, *fd, 0, data)).ok());
    const Status crashed = co_await fs.close(ctx, *fd);
    EXPECT_EQ(crashed.code(), Errc::io_error);
    // The tail was destroyed but the file exists with full size.
    auto st = co_await fs.stat(ctx, "/c/global.index");
    EXPECT_TRUE(st.ok());
    if (!st.ok()) co_return;
    EXPECT_EQ(st->size, 4096u);
    auto rfd = co_await fs.open(ctx, "/c/global.index", OpenFlags::ro());
    EXPECT_TRUE(rfd.ok());
    if (!rfd.ok()) co_return;
    auto fl = co_await fs.read(ctx, *rfd, 0, 4096);
    EXPECT_TRUE(fl.ok());
    if (!fl.ok()) co_return;
    EXPECT_FALSE(fl->content_equals(data));
    // The tear is exactly the trailing bytes: prefix intact, tail zeroed.
    auto head = co_await fs.read(ctx, *rfd, 0, 4096 - 24);
    EXPECT_TRUE(head.ok());
    if (!head.ok()) co_return;
    EXPECT_TRUE(head->content_equals(data.slice(0, 4096 - 24)));
    auto tail = co_await fs.read(ctx, *rfd, 4096 - 24, 24);
    EXPECT_TRUE(tail.ok());
    if (!tail.ok()) co_return;
    EXPECT_TRUE(tail->content_equals(DataView::zeros(24)));
    EXPECT_TRUE((co_await fs.close(ctx, *rfd)).ok());
    // One-shot per path: rewriting the index closes cleanly (recovery by
    // rewrite works).
    auto wfd = co_await fs.open(ctx, "/c/global.index", OpenFlags::wr_trunc());
    EXPECT_TRUE(wfd.ok());
    if (!wfd.ok()) co_return;
    EXPECT_TRUE((co_await fs.write(ctx, *wfd, 0, data)).ok());
    EXPECT_TRUE((co_await fs.close(ctx, *wfd)).ok());
    // Non-index files never crash.
    auto ofd = co_await fs.open(ctx, "/c/data.log", OpenFlags::wr_create());
    EXPECT_TRUE(ofd.ok());
    if (!ofd.ok()) co_return;
    EXPECT_TRUE((co_await fs.write(ctx, *ofd, 0, data)).ok());
    EXPECT_TRUE((co_await fs.close(ctx, *ofd)).ok());
  }(fs, ctx_));
  EXPECT_EQ(counter("plfs.fault.crash_close").value(), before + 1);
}

TEST_F(FaultyFsTest, SpikeDelaysButSucceeds) {
  FaultyFs fs = make("meta.spike=1,spike_ms=40");
  test::run_task(engine_, [](FaultyFs& fs, IoCtx ctx, sim::Engine& engine) -> sim::Task<void> {
    const TimePoint t0 = engine.now();
    EXPECT_TRUE((co_await fs.mkdir(ctx, "/spiked")).ok());
    EXPECT_GE((engine.now() - t0).to_ms(), 40.0);
  }(fs, ctx_, engine_));
}

}  // namespace
}  // namespace tio::pfs
