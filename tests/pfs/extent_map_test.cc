#include "pfs/extent_map.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"

namespace tio::pfs {
namespace {

TEST(ExtentMap, EmptyMapReadsZeros) {
  ExtentMap m;
  EXPECT_EQ(m.high_water(), 0u);
  const auto fl = m.read(10, 20);
  EXPECT_TRUE(fl.content_equals(DataView::zeros(20)));
}

TEST(ExtentMap, SimpleWriteReadRoundTrip) {
  ExtentMap m;
  const auto v = DataView::pattern(1, 0, 100);
  m.write(50, v);
  EXPECT_EQ(m.high_water(), 150u);
  EXPECT_TRUE(m.read(50, 100).content_equals(v));
}

TEST(ExtentMap, ReadSpansHoleBeforeExtent) {
  ExtentMap m;
  m.write(100, DataView::pattern(1, 0, 50));
  const auto fl = m.read(80, 40);
  // 20 bytes of hole, then 20 bytes of data.
  EXPECT_EQ(fl.at(0), std::byte{0});
  EXPECT_EQ(fl.at(19), std::byte{0});
  EXPECT_EQ(fl.at(20), DataView::pattern_byte(1, 0));
}

TEST(ExtentMap, OverwriteReplacesMiddle) {
  ExtentMap m;
  m.write(0, DataView::pattern(1, 0, 100));
  m.write(40, DataView::pattern(2, 0, 20));
  EXPECT_TRUE(m.read(0, 40).content_equals(DataView::pattern(1, 0, 40)));
  EXPECT_TRUE(m.read(40, 20).content_equals(DataView::pattern(2, 0, 20)));
  EXPECT_TRUE(m.read(60, 40).content_equals(DataView::pattern(1, 60, 40)));
}

TEST(ExtentMap, OverwriteExactExtent) {
  ExtentMap m;
  m.write(10, DataView::pattern(1, 0, 30));
  m.write(10, DataView::pattern(2, 0, 30));
  EXPECT_TRUE(m.read(10, 30).content_equals(DataView::pattern(2, 0, 30)));
  EXPECT_EQ(m.extent_count(), 1u);
}

TEST(ExtentMap, OverwriteSpanningMultipleExtents) {
  ExtentMap m;
  m.write(0, DataView::pattern(1, 0, 10));
  m.write(20, DataView::pattern(2, 0, 10));
  m.write(40, DataView::pattern(3, 0, 10));
  m.write(5, DataView::pattern(9, 0, 40));  // covers tail of 1, all of 2, head of 3
  EXPECT_TRUE(m.read(0, 5).content_equals(DataView::pattern(1, 0, 5)));
  EXPECT_TRUE(m.read(5, 40).content_equals(DataView::pattern(9, 0, 40)));
  EXPECT_TRUE(m.read(45, 5).content_equals(DataView::pattern(3, 5, 5)));
}

TEST(ExtentMap, SequentialAppendsCoalesceToOneExtent) {
  ExtentMap m;
  const std::uint64_t chunk = 1000;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t off = i * chunk;
    m.write(off, DataView::pattern(7, off, chunk));
  }
  EXPECT_EQ(m.extent_count(), 1u);
  EXPECT_TRUE(m.read(0, 100 * chunk).content_equals(DataView::pattern(7, 0, 100 * chunk)));
}

TEST(ExtentMap, NonContinuationNeighboursDoNotCoalesce) {
  ExtentMap m;
  m.write(0, DataView::pattern(1, 0, 10));
  m.write(10, DataView::pattern(2, 0, 10));  // adjacent, different seed
  EXPECT_EQ(m.extent_count(), 2u);
}

TEST(ExtentMap, BackfillBetweenExtentsCoalescesAllThree) {
  ExtentMap m;
  m.write(0, DataView::pattern(7, 0, 10));
  m.write(20, DataView::pattern(7, 20, 10));
  m.write(10, DataView::pattern(7, 10, 10));  // exactly fills the gap
  EXPECT_EQ(m.extent_count(), 1u);
  EXPECT_TRUE(m.read(0, 30).content_equals(DataView::pattern(7, 0, 30)));
}

TEST(ExtentMap, TruncateDropsAndSplits) {
  ExtentMap m;
  m.write(0, DataView::pattern(1, 0, 100));
  m.write(200, DataView::pattern(2, 0, 50));
  m.truncate(60);
  EXPECT_EQ(m.high_water(), 60u);
  EXPECT_TRUE(m.read(0, 60).content_equals(DataView::pattern(1, 0, 60)));
  m.truncate(0);
  EXPECT_TRUE(m.empty());
}

TEST(ExtentMap, ZeroLengthWriteIsNoop) {
  ExtentMap m;
  m.write(10, DataView());
  EXPECT_TRUE(m.empty());
}

TEST(ExtentMap, BackedBytesCountsContentNotHoles) {
  ExtentMap m;
  m.write(0, DataView::pattern(1, 0, 10));
  m.write(100, DataView::pattern(1, 100, 10));
  EXPECT_EQ(m.backed_bytes(), 20u);
  EXPECT_EQ(m.high_water(), 110u);
}

// Property test: random writes against a byte-vector reference model.
class ExtentMapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtentMapProperty, MatchesReferenceModelUnderRandomWrites) {
  Rng rng(GetParam());
  constexpr std::uint64_t kFileSize = 4096;
  ExtentMap m;
  std::vector<std::byte> ref(kFileSize, std::byte{0});
  std::uint64_t high = 0;

  for (int op = 0; op < 300; ++op) {
    const std::uint64_t off = rng.below(kFileSize - 1);
    const std::uint64_t len = 1 + rng.below(std::min<std::uint64_t>(kFileSize - off, 257) - 1);
    const std::uint64_t seed = rng.below(1000);
    const auto data = DataView::pattern(seed, off, len);
    m.write(off, data);
    for (std::uint64_t i = 0; i < len; ++i) ref[off + i] = data.at(i);
    high = std::max(high, off + len);

    // Verify a random read each iteration.
    const std::uint64_t roff = rng.below(kFileSize);
    const std::uint64_t rlen = rng.below(kFileSize - roff + 1);
    const auto fl = m.read(roff, rlen);
    ASSERT_EQ(fl.size(), rlen);
    for (std::uint64_t i = 0; i < rlen; ++i) {
      ASSERT_EQ(fl.at(i), ref[roff + i]) << "op " << op << " at " << roff + i;
    }
  }
  EXPECT_EQ(m.high_water(), high);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtentMapProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace tio::pfs
