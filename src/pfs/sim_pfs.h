// SimPfs: the simulated underlying parallel file system ("PanFS-like").
//
// Combines:
//   * a real in-memory namespace + per-file extent maps (data is verifiable),
//   * metadata servers modeled as FCFS queues with per-directory serialized
//     inserts that degrade as directories grow,
//   * OSTs with seek/stream/prefetch behaviour behind the cluster's shared
//     storage network,
//   * a range-lock manager charging ownership transfers when multiple nodes
//     write the same regions of one file — the N-1 serialization the paper's
//     middleware removes,
//   * the cluster's per-node page caches.
//
// Metadata placement: the top-level path component ("/vol3/...") selects the
// metadata server, modeling rigidly divided, glued-together namespaces
// (PanFS realms). A single directory never spreads across servers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/cluster.h"
#include "pfs/config.h"
#include "pfs/extent_map.h"
#include "pfs/fs_client.h"
#include "pfs/meta_cache.h"
#include "pfs/namespace.h"
#include "pfs/ost.h"
#include "raft/raft.h"
#include "sim/server.h"
#include "sim/sync.h"

namespace tio::pfs {

struct FaultPlan;

// The replicated metadata command vocabulary: what a Raft group's log
// entries carry, applied to the namespace at commit.
struct MetaCommand {
  enum class Kind { create, mkdir, rmdir, unlink, rename };
  Kind kind = Kind::create;
  std::string path;
  std::string path2;  // rename destination
  bool excl = false;
};

// Result of applying one MetaCommand (the client-visible outcome).
struct MetaApply {
  Status status;
  ObjectId oid = kNoObject;
  bool created = false;
};

// A batch of mutations bound for one metadata group, coalesced client-side
// and applied as ONE log entry (replicated) or one amortized round trip
// (unreplicated). Idempotent as a unit for the same reason the single
// commands are: every entry's apply tolerates re-execution (create returns
// the existing object, mkdir/unlink report exists/not_found), and the Raft
// layer's group-wide applied index already guarantees exactly-once apply
// per committed index.
struct MetaBatch {
  std::vector<MetaCommand> cmds;
};

// Per-entry outcomes of a MetaBatch, in submission order.
struct MetaBatchApply {
  std::vector<MetaApply> results;
};

class SimPfs : public FsClient {
 public:
  SimPfs(net::Cluster& cluster, PfsConfig config);
  ~SimPfs() override;

  sim::Task<Result<FileId>> open(IoCtx ctx, std::string path, OpenFlags flags) override;
  sim::Task<Status> close(IoCtx ctx, FileId file) override;
  sim::Task<Result<std::uint64_t>> write(IoCtx ctx, FileId file, std::uint64_t offset,
                                         DataView data) override;
  sim::Task<Result<FragmentList>> read(IoCtx ctx, FileId file, std::uint64_t offset,
                                       std::uint64_t len) override;
  sim::Task<Status> mkdir(IoCtx ctx, std::string path) override;
  sim::Task<Status> rmdir(IoCtx ctx, std::string path) override;
  sim::Task<Status> unlink(IoCtx ctx, std::string path) override;
  sim::Task<Status> rename(IoCtx ctx, std::string from, std::string to) override;
  sim::Task<Result<StatInfo>> stat(IoCtx ctx, std::string path) override;
  sim::Task<Result<std::vector<DirEntry>>> readdir(IoCtx ctx, std::string path) override;
  sim::Engine& engine() override { return cluster_.engine(); }

  // --- introspection (tests, benches) ---
  const PfsConfig& config() const { return config_; }
  net::Cluster& cluster() { return cluster_; }
  Namespace& ns() { return ns_; }
  // Extent map of a file's object; null when unknown.
  const ExtentMap* object_extents(ObjectId oid) const;
  const sim::FcfsServer& mds(std::size_t i) const { return *mds_[i]; }
  const Ost& ost(std::size_t i) const { return *osts_[i]; }
  std::size_t mds_of_path(std::string_view path) const;
  void drop_caches();

  // --- metadata replication (mds_replication = raft) ---
  bool replicated() const { return config_.mds_replication == MdsReplication::raft; }
  std::size_t raft_group_count() const { return raft_groups_.size(); }
  raft::Group& raft_group(std::size_t g) { return *raft_groups_[g]; }
  // Schedules the plan's server outages / partitions onto the replica
  // groups (crash at window start — resolving replica "leader" then —
  // restart at window end). Every fault event also revokes the group's
  // client leases (epoch bump). No-op when unreplicated; the testbed
  // lowers such plans to path-prefix outages instead.
  void schedule_server_faults(const FaultPlan& plan);

  // --- leased client metadata cache (meta_lease > 0) ---
  MetaCache* meta_cache() { return meta_cache_.get(); }
  std::uint64_t group_epoch(std::size_t g) const { return group_epochs_[g]; }
  // Wholesale lease revocation for one metadata group: cached entries
  // issued under earlier epochs are discarded on their next lookup.
  void revoke_leases(std::size_t g) { ++group_epochs_[g]; }

  struct Stats {
    std::uint64_t bytes_written = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t cache_hit_bytes = 0;
    std::uint64_t lock_grants = 0;
    std::uint64_t lock_transfers = 0;
    std::uint64_t rmw_reads = 0;
    std::uint64_t metadata_ops = 0;
    std::uint64_t opens = 0;
    std::uint64_t creates = 0;
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  struct Object {
    ExtentMap data;
    std::uint64_t size = 0;
    TimePoint mtime;
    bool dentry_hot = false;  // opened before: MDS serves from cache
    std::unordered_map<std::uint64_t, std::size_t> lock_owner;  // range idx -> node
    std::unique_ptr<sim::FcfsServer> lock_server;               // lazily created
  };
  struct OpenFile {
    ObjectId oid = kNoObject;
    OpenFlags flags;
    std::string parent_dir;  // for close-time MDS selection
  };

  struct MetaSm;  // raft::StateMachine over ns_ (defined in sim_pfs.cc)

  // One forming batch per metadata group: mutations append until the batch
  // fills (mds_batch entries) or the linger timer fires, then the whole
  // batch travels as one RPC and every waiter wakes with its own result.
  struct PendingBatch {
    explicit PendingBatch(sim::Engine& e) : gate(e) {}
    MetaBatch batch;
    IoCtx ctx;  // first enqueuer; its node/rank carry the batch RPC
    bool done = false;
    Status fail;  // batch-wide transport failure (e.g. no reachable leader)
    std::vector<MetaApply> results;
    sim::Gate gate;
  };

  Object& object(ObjectId oid);
  Result<OpenFile*> handle(FileId file);
  sim::Mutex& dir_mutex(const std::string& dir);
  // Applies one mutation to the namespace (shared by the replicated state
  // machine, the batch path, and nothing else — legacy unreplicated paths
  // keep their historical inline form). Invalidate-on-mutation for the
  // client metadata cache happens here.
  MetaApply apply_meta(const MetaCommand& cmd);
  // MDS service time of one mutation (directory-degraded insert cost).
  Duration meta_service(const MetaCommand& cmd) const;
  // Enqueues `cmd` into the forming batch of its metadata group and waits
  // for the flushed batch's per-entry outcome. Only called when
  // config_.mds_batch > 0.
  sim::Task<Result<MetaApply>> batch_submit(IoCtx ctx, std::string_view group_path,
                                            MetaCommand cmd);
  void flush_batch(std::size_t g);
  sim::Task<void> run_batch(std::size_t g, std::shared_ptr<PendingBatch> pending);
  // True when a valid lease for (node, path) exists; misses are counted.
  bool cache_lookup(const IoCtx& ctx, const std::string& path, MetaCache::Entry* out = nullptr);
  void cache_insert(const IoCtx& ctx, const std::string& path, ObjectId oid, bool is_dir);
  // RPC + queue + service at the MDS serving `dir_path`. Unreplicated this
  // never fails; replicated it is a leader read and can surface
  // Errc::busy when the group has no reachable leader.
  sim::Task<Status> mds_op(IoCtx ctx, std::string_view dir_path, Duration service);
  // Namespace mutation under the directory's serialized insert lock, with
  // size-dependent degradation (unreplicated path only — replicated
  // mutations serialize through the group's log instead).
  sim::Task<void> dir_mutation(IoCtx ctx, std::string dir_path);
  // Replicated mutation: routes `cmd` through the namespace's Raft group
  // and returns the applied outcome.
  sim::Task<Result<MetaApply>> raft_submit(IoCtx ctx, std::string_view group_path,
                                           MetaCommand cmd);
  sim::Task<void> acquire_write_locks(IoCtx ctx, Object& obj, std::uint64_t offset,
                                      std::uint64_t len);
  // Physical transfer of [offset, offset+len) of `oid`: storage network +
  // striped OST I/Os (issued concurrently up to stripe_parallelism).
  sim::Task<void> data_path(IoCtx ctx, ObjectId oid, std::uint64_t offset, std::uint64_t len,
                            bool is_write);

  net::Cluster& cluster_;
  PfsConfig config_;
  Namespace ns_;
  std::unique_ptr<MetaSm> meta_sm_;
  std::unique_ptr<MetaCache> meta_cache_;
  std::vector<std::uint64_t> group_epochs_;
  std::vector<std::shared_ptr<PendingBatch>> forming_;
  std::vector<std::unique_ptr<raft::Group>> raft_groups_;
  std::vector<std::unique_ptr<sim::FcfsServer>> mds_;
  std::vector<std::unique_ptr<Ost>> osts_;
  std::unordered_map<std::string, std::unique_ptr<sim::Mutex>> dir_mutexes_;
  std::unordered_map<ObjectId, Object> objects_;
  std::unordered_map<FileId, OpenFile> open_files_;
  FileId next_file_id_ = 1;
  Stats stats_;
};

}  // namespace tio::pfs
