file(REMOVE_RECURSE
  "CMakeFiles/tio_iolib.dir/collective_buffer.cc.o"
  "CMakeFiles/tio_iolib.dir/collective_buffer.cc.o.d"
  "CMakeFiles/tio_iolib.dir/tinyhdf.cc.o"
  "CMakeFiles/tio_iolib.dir/tinyhdf.cc.o.d"
  "CMakeFiles/tio_iolib.dir/tinync.cc.o"
  "CMakeFiles/tio_iolib.dir/tinync.cc.o.d"
  "libtio_iolib.a"
  "libtio_iolib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tio_iolib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
