// Minimal Status / Result<T> error-handling vocabulary, POSIX-flavoured.
//
// The simulated file systems surface the same error space a POSIX-ish
// parallel file system client would (ENOENT, EEXIST, EISDIR, ...), so the
// PLFS middleware above can be written exactly as it would be against a real
// VFS. Exceptions are reserved for programming errors.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace tio {

enum class Errc : std::uint8_t {
  ok = 0,
  not_found,       // ENOENT
  exists,          // EEXIST
  not_a_directory, // ENOTDIR
  is_a_directory,  // EISDIR
  not_empty,       // ENOTEMPTY
  invalid,         // EINVAL
  bad_handle,      // EBADF
  busy,            // EBUSY
  io_error,        // EIO
  permission,      // EACCES
  unsupported,     // ENOTSUP
  no_space,        // ENOSPC
  stale,           // ESTALE
};

std::string_view errc_name(Errc e);

// Transient errors are those a client may reasonably retry: the operation
// failed because of momentary server/storage state (EBUSY, EIO, ESTALE),
// not because the request itself is wrong. Everything else is permanent —
// retrying an ENOENT or EEXIST can only waste the retry budget.
constexpr bool errc_is_transient(Errc e) {
  return e == Errc::busy || e == Errc::io_error || e == Errc::stale;
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(Errc code, std::string message) : code_(code), message_(std::move(message)) {}
  static Status Ok() { return {}; }

  bool ok() const { return code_ == Errc::ok; }
  // True when the failure is worth retrying (see errc_is_transient).
  bool is_transient() const { return errc_is_transient(code_); }
  Errc code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const Status& s) {
    return os << s.to_string();
  }

 private:
  Errc code_ = Errc::ok;
  std::string message_;
};

inline Status error(Errc code, std::string message) { return Status(code, std::move(message)); }

// Result<T>: either a value or a non-ok Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}               // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {         // NOLINT implicit
    if (std::get<Status>(v_).ok()) throw std::logic_error("Result built from ok Status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { check(); return std::get<T>(v_); }
  T& value() & { check(); return std::get<T>(v_); }
  T&& value() && { check(); return std::get<T>(std::move(v_)); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(v_);
  }

 private:
  void check() const {
    if (!ok()) throw std::runtime_error("Result::value() on error: " + status().to_string());
  }
  std::variant<T, Status> v_;
};

// Propagate-on-error helpers (statement-expression free, usable in coroutines).
#define TIO_RETURN_IF_ERROR(expr)                      \
  do {                                                 \
    ::tio::Status tio_status_ = (expr);                \
    if (!tio_status_.ok()) return tio_status_;         \
  } while (0)

#define TIO_ASSIGN_OR_RETURN(lhs, rexpr)               \
  TIO_ASSIGN_OR_RETURN_IMPL_(TIO_CAT_(tio_res_, __LINE__), lhs, rexpr)
#define TIO_CAT_(a, b) TIO_CAT2_(a, b)
#define TIO_CAT2_(a, b) a##b
#define TIO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr)    \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

// Coroutine flavours (a plain `return` is ill-formed inside a coroutine).
#define TIO_CO_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::tio::Status tio_status_ = (expr);                \
    if (!tio_status_.ok()) co_return tio_status_;      \
  } while (0)

#define TIO_CO_ASSIGN_OR_RETURN(lhs, rexpr)            \
  TIO_CO_ASSIGN_OR_RETURN_IMPL_(TIO_CAT_(tio_res_, __LINE__), lhs, rexpr)
#define TIO_CO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) co_return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace tio
