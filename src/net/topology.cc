#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.h"
#include "common/stats.h"

namespace tio::net {

namespace {

// Virtual slack (bytes) absorbing integer-ns rounding of event times;
// flows within this of done are taken as complete (sim/fairshare.cc).
constexpr double kSlackBytes = 1e-3;

// Flow spans by locality class, on the engine track like the fair-share
// waits (the network does not know which rank awaits it). Trace-only: one
// histogram entry per message would swamp the registry at full scale.
const trace::SpanSite& intra_rack_site() {
  static const trace::SpanSite site("net.topo", "net.topo.flow.intra_rack",
                                    /*with_histogram=*/false);
  return site;
}
const trace::SpanSite& cross_rack_site() {
  static const trace::SpanSite site("net.topo", "net.topo.flow.cross_rack",
                                    /*with_histogram=*/false);
  return site;
}
// Per-link busy periods (first flow arrives -> last flow drains).
const trace::SpanSite& link_busy_site() {
  static const trace::SpanSite site("net.topo", "net.topo.link.busy",
                                    /*with_histogram=*/false);
  return site;
}

}  // namespace

FlowNet::FlowNet(sim::Engine& engine) : engine_(engine), last_update_(engine.now()) {}

std::uint32_t FlowNet::add_link(double capacity_bytes_per_sec) {
  if (capacity_bytes_per_sec <= 0) {
    throw std::invalid_argument("FlowNet: link capacity must be > 0");
  }
  links_.push_back(Link{capacity_bytes_per_sec});
  return static_cast<std::uint32_t>(links_.size() - 1);
}

double FlowNet::rate_of(std::uint64_t seq) const {
  for (const Flow& f : flows_) {
    if (f.seq == seq) return f.rate;
  }
  return -1;
}

std::vector<double> FlowNet::max_min_rates(const std::vector<double>& capacity,
                                           const std::vector<std::vector<std::uint32_t>>& paths) {
  const std::size_t num_flows = paths.size();
  const std::size_t num_links = capacity.size();
  std::vector<double> rate(num_flows, 0.0);
  std::vector<char> frozen(num_flows, 0);
  std::vector<double> residual = capacity;
  std::vector<std::uint32_t> load(num_links, 0);

  std::size_t unfrozen = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (paths[f].empty()) {
      rate[f] = std::numeric_limits<double>::infinity();
      frozen[f] = 1;
    } else {
      ++unfrozen;
    }
  }
  while (unfrozen > 0) {
    std::fill(load.begin(), load.end(), 0u);
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      for (const std::uint32_t l : paths[f]) ++load[l];
    }
    // Bottleneck: the link giving its flows the smallest equal share; the
    // lowest index wins ties, so the fill order is deterministic.
    std::size_t bottleneck = num_links;
    double share = 0;
    for (std::size_t l = 0; l < num_links; ++l) {
      if (load[l] == 0) continue;
      const double s = residual[l] / static_cast<double>(load[l]);
      if (bottleneck == num_links || s < share) {
        bottleneck = l;
        share = s;
      }
    }
    if (bottleneck == num_links) break;  // no loaded link left (unreachable)
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      bool crosses = false;
      for (const std::uint32_t l : paths[f]) crosses = crosses || l == bottleneck;
      if (!crosses) continue;
      rate[f] = share;
      frozen[f] = 1;
      --unfrozen;
      for (const std::uint32_t l : paths[f]) residual[l] = std::max(0.0, residual[l] - share);
    }
  }
  return rate;
}

void FlowNet::start_transfer(std::span<const std::uint32_t> path, std::uint64_t bytes,
                             std::coroutine_handle<> h) {
  assert(!path.empty() && "FlowNet flows must cross at least one link");
  advance();
  Flow flow;
  flow.seq = seq_++;
  flow.remaining = static_cast<double>(bytes);
  flow.handle = h;
  flow.path.assign(path.begin(), path.end());
  trace::Tracer& tracer = trace::Tracer::instance();
  if (tracer.enabled()) {
    const trace::SpanSite& site = path.size() > 2 ? cross_rack_site() : intra_rack_site();
    flow.trace_rec =
        tracer.begin_span(-1, site.name_id, site.cat_id, engine_.trace_pid(), engine_.now().to_ns());
  }
  for (const std::uint32_t l : flow.path) {
    links_[l].bytes += bytes;
    link_started(l);
  }
  flows_.push_back(std::move(flow));
  ++stats_.flows;
  stats_.bytes += bytes;
  stats_.max_concurrency = std::max(stats_.max_concurrency, flows_.size());
  recompute_and_schedule();
}

void FlowNet::advance() {
  const TimePoint now = engine_.now();
  const double dt = (now - last_update_).to_seconds();
  if (dt > 0) {
    for (Flow& f : flows_) f.remaining = std::max(0.0, f.remaining - f.rate * dt);
  }
  last_update_ = now;
}

void FlowNet::recompute_and_schedule() {
  ++generation_;  // invalidate any previously scheduled completion
  if (flows_.empty()) return;
  ++stats_.recomputes;

  // Water-fill in place over the active set (same algorithm as the pure
  // max_min_rates, but against member scratch to avoid per-event churn).
  scratch_residual_.resize(links_.size());
  for (std::size_t l = 0; l < links_.size(); ++l) scratch_residual_[l] = links_[l].capacity;
  scratch_load_.assign(links_.size(), 0u);
  scratch_frozen_.assign(flows_.size(), 0);
  std::size_t unfrozen = flows_.size();
  while (unfrozen > 0) {
    std::fill(scratch_load_.begin(), scratch_load_.end(), 0u);
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      if (scratch_frozen_[f]) continue;
      for (const std::uint32_t l : flows_[f].path) ++scratch_load_[l];
    }
    std::size_t bottleneck = links_.size();
    double share = 0;
    for (std::size_t l = 0; l < links_.size(); ++l) {
      if (scratch_load_[l] == 0) continue;
      const double s = scratch_residual_[l] / static_cast<double>(scratch_load_[l]);
      if (bottleneck == links_.size() || s < share) {
        bottleneck = l;
        share = s;
      }
    }
    if (bottleneck == links_.size()) break;
    assert(share > 0 && "max-min share must stay positive on positive capacities");
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      if (scratch_frozen_[f]) continue;
      bool crosses = false;
      for (const std::uint32_t l : flows_[f].path) crosses = crosses || l == bottleneck;
      if (!crosses) continue;
      flows_[f].rate = share;
      scratch_frozen_[f] = 1;
      --unfrozen;
      for (const std::uint32_t l : flows_[f].path) {
        scratch_residual_[l] = std::max(0.0, scratch_residual_[l] - share);
      }
    }
  }

  // Next completion: the earliest finish over all flows at the new rates.
  double next_s = std::numeric_limits<double>::infinity();
  for (const Flow& f : flows_) {
    next_s = std::min(next_s, std::max(0.0, f.remaining) / f.rate);
  }
  // Round up and add 1 ns so the event never fires short of the target.
  const auto ns = static_cast<std::int64_t>(std::ceil(next_s * 1e9)) + 1;
  const std::uint64_t expect = generation_;
  engine_.after(Duration::ns(ns), [this, expect] { on_completion_event(expect); });
}

void FlowNet::on_completion_event(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by membership change
  advance();
  // Complete finished flows in arrival order (flows_ is kept in arrival
  // order, so the scan is the deterministic resume order). Resumption is
  // deferred through the engine queue like the fair-share channel's.
  trace::Tracer& tracer = trace::Tracer::instance();
  std::size_t kept = 0;
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    Flow& flow = flows_[f];
    if (flow.remaining <= kSlackBytes) {
      if (flow.trace_rec != trace::kNoRecord) {
        tracer.end_span(-1, flow.trace_rec, engine_.now().to_ns());
      }
      for (const std::uint32_t l : flow.path) link_finished(l);
      const auto h = flow.handle;
      engine_.after(Duration::zero(), [h] { h.resume(); });
    } else {
      if (kept != f) flows_[kept] = std::move(flow);
      ++kept;
    }
  }
  flows_.resize(kept);
  recompute_and_schedule();
}

void FlowNet::link_started(std::uint32_t link) {
  Link& l = links_[link];
  if (l.active++ == 0) {
    trace::Tracer& tracer = trace::Tracer::instance();
    if (tracer.enabled()) {
      const trace::SpanSite& site = link_busy_site();
      l.busy_rec = tracer.begin_span(-1, site.name_id, site.cat_id, engine_.trace_pid(),
                                     engine_.now().to_ns());
    }
  }
}

void FlowNet::link_finished(std::uint32_t link) {
  Link& l = links_[link];
  if (--l.active == 0 && l.busy_rec != trace::kNoRecord) {
    trace::Tracer::instance().end_span(-1, l.busy_rec, engine_.now().to_ns());
    l.busy_rec = trace::kNoRecord;
  }
}

Topology::Topology(sim::Engine& engine, const ClusterConfig& config)
    : engine_(engine), config_(config), net_(engine) {
  config_.validate();
  if (config_.topology == TopologyKind::flat) {
    throw std::invalid_argument("Topology: the flat preset has no link graph");
  }
  const std::size_t nodes = config_.nodes;
  const std::size_t racks = config_.racks;
  spines_ = config_.topology == TopologyKind::fat_tree ? std::max<std::size_t>(1, racks / 2) : 1;
  // Link layout: [host_up x nodes][host_down x nodes]
  //              [rack_up x racks*spines][rack_down x racks*spines].
  for (std::size_t n = 0; n < 2 * nodes; ++n) net_.add_link(config_.nic_bandwidth);
  const double rack_uplink = static_cast<double>(config_.nodes_per_rack()) *
                             config_.nic_bandwidth / config_.oversubscription;
  const double plane = rack_uplink / static_cast<double>(spines_);
  for (std::size_t r = 0; r < 2 * racks * spines_; ++r) net_.add_link(plane);
}

std::uint32_t Topology::host_up(std::size_t node) const {
  return static_cast<std::uint32_t>(node);
}
std::uint32_t Topology::host_down(std::size_t node) const {
  return static_cast<std::uint32_t>(config_.nodes + node);
}
std::uint32_t Topology::rack_up(std::size_t rack, std::size_t spine) const {
  return static_cast<std::uint32_t>(2 * config_.nodes + rack * spines_ + spine);
}
std::uint32_t Topology::rack_down(std::size_t rack, std::size_t spine) const {
  return static_cast<std::uint32_t>(2 * config_.nodes + config_.racks * spines_ +
                                    rack * spines_ + spine);
}

Topology::Route Topology::route_of(std::size_t from_node, std::size_t to_node) const {
  Route r;
  if (from_node == to_node) {
    r.klass = Route::Class::intra_node;
    r.latency = config_.intra_node_latency();
    return r;
  }
  const std::size_t from_rack = config_.rack_of_node(from_node);
  const std::size_t to_rack = config_.rack_of_node(to_node);
  r.links[r.num_links++] = host_up(from_node);
  if (from_rack == to_rack) {
    r.klass = Route::Class::intra_rack;
    r.latency = config_.fabric_latency;  // one switch hop (the shared ToR)
  } else {
    r.klass = Route::Class::cross_rack;
    r.latency = config_.fabric_latency * 3;  // ToR -> core -> ToR
    // ECMP: the flow's uplink plane is a deterministic hash of the rack
    // pair, so repeated rack pairs collide on the same spine (fat_tree
    // spines_ > 1) exactly as static per-destination hashing would.
    const std::size_t spine =
        static_cast<std::size_t>(hash_combine(from_rack, to_rack)) % spines_;
    r.links[r.num_links++] = rack_up(from_rack, spine);
    r.links[r.num_links++] = rack_down(to_rack, spine);
  }
  r.links[r.num_links++] = host_down(to_node);
  return r;
}

sim::Task<void> Topology::transfer(std::size_t from_node, std::size_t to_node,
                                   std::uint64_t bytes) {
  static Counter& msgs_intra_node = counter("net.topo.msgs.intra_node");
  static Counter& msgs_intra_rack = counter("net.topo.msgs.intra_rack");
  static Counter& msgs_cross_rack = counter("net.topo.msgs.cross_rack");
  static Counter& bytes_intra_node = counter("net.topo.bytes.intra_node");
  static Counter& bytes_intra_rack = counter("net.topo.bytes.intra_rack");
  static Counter& bytes_cross_rack = counter("net.topo.bytes.cross_rack");
  static Counter& link_bytes_host = counter("net.topo.link_bytes.host");
  static Counter& link_bytes_rack = counter("net.topo.link_bytes.rack");

  const Route r = route_of(from_node, to_node);
  switch (r.klass) {
    case Route::Class::intra_node:
      msgs_intra_node.add(1);
      bytes_intra_node.add(bytes);
      // Shared-memory transport: latency only, no link involvement —
      // identical to the flat preset's intra-node path.
      co_await engine_.sleep(r.latency);
      co_return;
    case Route::Class::intra_rack:
      msgs_intra_rack.add(1);
      bytes_intra_rack.add(bytes);
      link_bytes_host.add(2 * bytes);
      break;
    case Route::Class::cross_rack:
      msgs_cross_rack.add(1);
      bytes_cross_rack.add(bytes);
      link_bytes_host.add(2 * bytes);
      link_bytes_rack.add(2 * bytes);
      break;
  }
  co_await net_.transfer(std::span<const std::uint32_t>(r.links, r.num_links), bytes);
  co_await engine_.sleep(r.latency);
}

std::string topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::flat:
      return "flat";
    case TopologyKind::tor:
      return "tor";
    case TopologyKind::fat_tree:
      return "fat-tree";
  }
  return "?";
}

bool parse_topology_kind(const std::string& name, TopologyKind& out) {
  if (name == "flat") {
    out = TopologyKind::flat;
  } else if (name == "tor") {
    out = TopologyKind::tor;
  } else if (name == "fat-tree" || name == "fat_tree") {
    out = TopologyKind::fat_tree;
  } else {
    return false;
  }
  return true;
}

}  // namespace tio::net
