#include "pfs/sim_pfs.h"

#include <algorithm>

#include "common/strutil.h"

namespace tio::pfs {

SimPfs::SimPfs(net::Cluster& cluster, PfsConfig config)
    : cluster_(cluster), config_(config) {
  for (std::size_t i = 0; i < config_.num_mds; ++i) {
    mds_.push_back(std::make_unique<sim::FcfsServer>(engine(), config_.mds_concurrency,
                                                     str_printf("mds-%zu", i)));
  }
  for (std::size_t i = 0; i < config_.num_osts; ++i) {
    osts_.push_back(std::make_unique<Ost>(engine(), config_, str_printf("ost-%zu", i)));
  }
}

std::size_t SimPfs::mds_of_path(std::string_view path) const {
  const auto comps = path_components(path);
  if (comps.empty()) return 0;
  const std::string_view top = comps.front();
  // Volumes named volK model separately mounted file systems: they map to
  // metadata servers round-robin, so K volumes on a K-MDS system are
  // guaranteed disjoint (like PanFS realms). Anything else hashes.
  if (top.starts_with("vol")) {
    std::uint64_t k = 0;
    bool numeric = top.size() > 3;
    for (const char c : top.substr(3)) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      k = k * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (numeric) return static_cast<std::size_t>(k % config_.num_mds);
  }
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : top) h = splitmix64(h ^ static_cast<unsigned char>(c));
  return static_cast<std::size_t>(h % config_.num_mds);
}

SimPfs::Object& SimPfs::object(ObjectId oid) { return objects_[oid]; }

const ExtentMap* SimPfs::object_extents(ObjectId oid) const {
  const auto it = objects_.find(oid);
  return it == objects_.end() ? nullptr : &it->second.data;
}

Result<SimPfs::OpenFile*> SimPfs::handle(FileId file) {
  const auto it = open_files_.find(file);
  if (it == open_files_.end()) return error(Errc::bad_handle, str_printf("fd %llu",
                                            static_cast<unsigned long long>(file)));
  return &it->second;
}

sim::Mutex& SimPfs::dir_mutex(const std::string& dir) {
  auto& slot = dir_mutexes_[dir];
  if (!slot) slot = std::make_unique<sim::Mutex>(engine());
  return *slot;
}

sim::Task<void> SimPfs::mds_op(std::string_view dir_path, Duration service) {
  ++stats_.metadata_ops;
  co_await engine().sleep(config_.rpc_overhead + cluster_.storage_latency());
  co_await mds_[mds_of_path(dir_path)]->serve(service);
}

sim::Task<void> SimPfs::dir_mutation(std::string dir_path) {
  sim::Mutex& mu = dir_mutex(dir_path);
  co_await mu.lock();
  const std::uint64_t entries = ns_.dir_entry_count(dir_path);
  const double degrade =
      1.0 + static_cast<double>(entries) / static_cast<double>(config_.dir_degrade_entries);
  const auto service = Duration::seconds(config_.dir_insert_time.to_seconds() * degrade);
  co_await mds_op(dir_path, service);
  mu.unlock();
}

sim::Task<Result<FileId>> SimPfs::open(IoCtx ctx, std::string path, OpenFlags flags) {
  (void)ctx;
  if (!flags.read && !flags.write) {
    co_return error(Errc::invalid, "open needs read or write: " + path);
  }
  path = path_normalize(path);
  const std::string parent(path_dirname(path));
  ++stats_.opens;

  ObjectId oid = kNoObject;
  auto existing = ns_.lookup(path);
  if (existing.ok() && existing->is_dir) {
    co_await mds_op(parent, config_.mds_open_time);
    co_return error(Errc::is_a_directory, path);
  }
  if (existing.ok()) {
    if (flags.create && flags.excl) {
      co_await mds_op(parent, config_.mds_open_time);
      co_return error(Errc::exists, path);
    }
    Object& cached = object(existing->oid);
    co_await mds_op(parent, cached.dentry_hot ? config_.mds_cached_open_time
                                              : config_.mds_open_time);
    cached.dentry_hot = true;
    oid = existing->oid;
    if (flags.trunc && flags.write) {
      Object& o = object(oid);
      o.data.truncate(0);
      o.size = 0;
      o.mtime = engine().now();
    }
  } else {
    if (!flags.create) {
      co_await mds_op(parent, config_.mds_open_time);
      co_return error(Errc::not_found, path);
    }
    // Creation: serialized insert into the parent directory.
    if (!ns_.exists(parent)) {
      co_await mds_op(parent, config_.mds_open_time);
      co_return error(Errc::not_found, "parent: " + parent);
    }
    co_await dir_mutation(parent);
    co_await mds_op(parent, config_.mds_create_time);
    auto created = ns_.create_file(path, flags.excl);
    if (!created.ok()) co_return created.status();
    oid = created->oid;
    if (created->created) {
      ++stats_.creates;
      Object& o = object(oid);
      o.mtime = engine().now();
    }
  }

  const FileId id = next_file_id_++;
  open_files_[id] = OpenFile{oid, flags, parent};
  co_return id;
}

sim::Task<Status> SimPfs::close(IoCtx ctx, FileId file) {
  (void)ctx;
  TIO_CO_ASSIGN_OR_RETURN(OpenFile * of, handle(file));
  const std::string parent = of->parent_dir;
  open_files_.erase(file);
  co_await mds_op(parent, config_.mds_close_time);
  co_return Status::Ok();
}

sim::Task<void> SimPfs::acquire_write_locks(IoCtx ctx, Object& obj, std::uint64_t offset,
                                            std::uint64_t len) {
  const std::uint64_t first = offset / config_.lock_range;
  const std::uint64_t last = (offset + len - 1) / config_.lock_range;
  for (std::uint64_t r = first; r <= last; ++r) {
    const auto it = obj.lock_owner.find(r);
    const auto owner = static_cast<std::size_t>(ctx.rank);
    if (it != obj.lock_owner.end() && it->second == owner) continue;  // cached lock
    if (it == obj.lock_owner.end()) {
      ++stats_.lock_grants;
      co_await engine().sleep(config_.lock_grant_time);
    } else {
      // Ownership transfer: revoke from the current holder, serialized at
      // the object's lock manager. Revocation synchronously flushes the
      // previous owner's dirty data for the range (approximated by the
      // incoming write's scale) before the new owner may proceed.
      ++stats_.lock_transfers;
      if (!obj.lock_server) {
        obj.lock_server = std::make_unique<sim::FcfsServer>(engine(), 1, "lockmgr");
      }
      const std::uint64_t flush_bytes =
          std::min(config_.lock_range, std::max(len, config_.rmw_page));
      co_await obj.lock_server->serve(config_.lock_transfer_time +
                                      transfer_time(flush_bytes, config_.ost_bandwidth));
    }
    obj.lock_owner[r] = owner;
  }
}

sim::Task<void> SimPfs::data_path(IoCtx ctx, ObjectId oid, std::uint64_t offset,
                                  std::uint64_t len, bool is_write) {
  (void)ctx;
  // Write-behind: the client pipelines dirty data to the server, so writes
  // pay bandwidth but not a per-op round trip; reads are synchronous.
  if (!(is_write && config_.write_behind)) {
    co_await engine().sleep(cluster_.storage_latency());
  }
  // The network transfer and the disk work pipeline (servers stream while
  // platters seek), so they run concurrently: the request takes the longer
  // of the two, not their sum.
  sim::WaitGroup net_wg(engine());
  net_wg.add();
  engine().spawn([](net::Cluster& cluster, std::uint64_t bytes,
                    sim::WaitGroup& wg) -> sim::Task<void> {
    co_await cluster.storage_net().transfer(bytes);
    wg.done();
  }(cluster_, len, net_wg));

  // Striped OST I/O. Pieces beyond stripe_parallelism are merged into
  // contiguous segments so a huge request costs O(parallelism) events.
  const std::uint64_t unit = config_.stripe_unit;
  const std::uint64_t first_piece = offset / unit;
  const std::uint64_t last_piece = (offset + len - 1) / unit;
  const std::uint64_t pieces = last_piece - first_piece + 1;
  const std::uint64_t segments =
      std::min<std::uint64_t>(pieces, std::max<std::size_t>(1, config_.stripe_parallelism));

  const std::size_t width = std::max<std::size_t>(1, std::min(config_.stripe_width,
                                                               osts_.size()));
  const std::size_t shelf = static_cast<std::size_t>(oid) % osts_.size();
  auto ost_of = [&](std::uint64_t piece) -> Ost& {
    return *osts_[(shelf + static_cast<std::size_t>(piece) % width) % osts_.size()];
  };
  if (segments == 1) {  // fast path: no extra fan-out for small ops
    co_await ost_of(first_piece).io(oid, offset, len, is_write);
    co_await net_wg.wait();
    co_return;
  }

  sim::WaitGroup wg(engine());
  auto issue = [](Ost& ost, ObjectId o, std::uint64_t off, std::uint64_t n, bool w,
                  sim::WaitGroup& group) -> sim::Task<void> {
    co_await ost.io(o, off, n, w);
    group.done();
  };
  const std::uint64_t span = offset + len;
  for (std::uint64_t s = 0; s < segments; ++s) {
    const std::uint64_t seg_start = std::max(offset, (first_piece + s * pieces / segments) * unit);
    const std::uint64_t seg_end =
        s + 1 == segments ? span
                          : std::min(span, (first_piece + (s + 1) * pieces / segments) * unit);
    if (seg_end <= seg_start) continue;
    Ost& ost = ost_of(first_piece + s);  // round-robin arms per segment
    wg.add();
    engine().spawn(issue(ost, oid, seg_start, seg_end - seg_start, is_write, wg));
  }
  co_await wg.wait();
  co_await net_wg.wait();
}

sim::Task<Result<std::uint64_t>> SimPfs::write(IoCtx ctx, FileId file, std::uint64_t offset,
                                               DataView data) {
  TIO_CO_ASSIGN_OR_RETURN(OpenFile * of, handle(file));
  if (!of->flags.write) co_return error(Errc::permission, "fd not writable");
  if (data.empty()) co_return std::uint64_t{0};
  Object& o = object(of->oid);
  const std::uint64_t len = data.size();

  if (config_.shared_file_locking) {
    co_await acquire_write_locks(ctx, o, offset, len);
  }
  // Read-modify-write penalty: unaligned data arriving anywhere but the
  // current end of file forces partial-page (parity-stripe) RMW at the
  // server. In-order appends coalesce in the write-behind cache and are
  // exempt — which is exactly what PLFS's log-structuring guarantees.
  const bool in_order_append = offset == o.size;
  const bool aligned =
      offset % config_.rmw_page == 0 && (offset + len) % config_.rmw_page == 0;
  if (!in_order_append && !aligned) {
    ++stats_.rmw_reads;
    const std::uint64_t page_start = offset - offset % config_.rmw_page;
    co_await data_path(ctx, of->oid, page_start, config_.rmw_page, /*is_write=*/false);
  }

  co_await data_path(ctx, of->oid, offset, len, /*is_write=*/true);

  o.data.write(offset, std::move(data));
  o.size = std::max(o.size, offset + len);
  o.mtime = engine().now();
  cluster_.page_cache(ctx.node).fill(of->oid, offset, len);
  stats_.bytes_written += len;
  co_return len;
}

sim::Task<Result<FragmentList>> SimPfs::read(IoCtx ctx, FileId file, std::uint64_t offset,
                                             std::uint64_t len) {
  TIO_CO_ASSIGN_OR_RETURN(OpenFile * of, handle(file));
  if (!of->flags.read) co_return error(Errc::permission, "fd not readable");
  Object& o = object(of->oid);
  if (offset >= o.size) co_return FragmentList{};  // EOF
  len = std::min(len, o.size - offset);
  if (len == 0) co_return FragmentList{};

  net::PageCache& cache = cluster_.page_cache(ctx.node);
  std::vector<net::ByteRange> misses;
  const std::uint64_t hit = cache.lookup(of->oid, offset, len, &misses);
  stats_.cache_hit_bytes += hit;
  if (hit > 0) {
    co_await engine().sleep(transfer_time(hit, cluster_.cached_read_rate()));
  }
  const std::uint64_t block = cluster_.config().page_cache_block;
  for (const auto& m : misses) {
    // Page-cache I/O is block granular: expand the miss to block boundaries
    // (clipped at EOF), charge the full transfer, and cache what was paid
    // for. This is what makes sequential log reads prefetch-friendly.
    const std::uint64_t lo = m.offset / block * block;
    const std::uint64_t hi = std::min(o.size, (m.offset + m.len + block - 1) / block * block);
    co_await data_path(ctx, of->oid, lo, hi - lo, /*is_write=*/false);
    cache.fill(of->oid, lo, hi - lo);
  }
  stats_.bytes_read += len;
  co_return o.data.read(offset, len);
}

sim::Task<Status> SimPfs::mkdir(IoCtx ctx, std::string path) {
  (void)ctx;
  path = path_normalize(path);
  const std::string parent(path_dirname(path));
  if (!ns_.exists(parent)) {
    co_await mds_op(parent, config_.mds_open_time);
    co_return error(Errc::not_found, "parent: " + parent);
  }
  co_await dir_mutation(parent);
  co_return ns_.mkdir(path);
}

sim::Task<Status> SimPfs::rmdir(IoCtx ctx, std::string path) {
  (void)ctx;
  path = path_normalize(path);
  co_await dir_mutation(std::string(path_dirname(path)));
  co_return ns_.rmdir(path);
}

sim::Task<Status> SimPfs::unlink(IoCtx ctx, std::string path) {
  (void)ctx;
  path = path_normalize(path);
  co_await dir_mutation(std::string(path_dirname(path)));
  auto removed = ns_.unlink(path);
  if (!removed.ok()) co_return removed.status();
  objects_.erase(removed.value());
  co_return Status::Ok();
}

sim::Task<Status> SimPfs::rename(IoCtx ctx, std::string from, std::string to) {
  (void)ctx;
  from = path_normalize(from);
  to = path_normalize(to);
  co_await dir_mutation(std::string(path_dirname(from)));
  if (path_dirname(from) != path_dirname(to)) {
    co_await dir_mutation(std::string(path_dirname(to)));
  }
  co_return ns_.rename(from, to);
}

sim::Task<Result<StatInfo>> SimPfs::stat(IoCtx ctx, std::string path) {
  (void)ctx;
  path = path_normalize(path);
  co_await mds_op(path_dirname(path), config_.mds_stat_time);
  auto entry = ns_.lookup(path);
  if (!entry.ok()) co_return entry.status();
  StatInfo info;
  info.is_dir = entry->is_dir;
  if (!entry->is_dir) {
    const auto it = objects_.find(entry->oid);
    if (it != objects_.end()) {
      info.size = it->second.size;
      info.mtime = it->second.mtime;
    }
  }
  co_return info;
}

sim::Task<Result<std::vector<DirEntry>>> SimPfs::readdir(IoCtx ctx, std::string path) {
  (void)ctx;
  path = path_normalize(path);
  auto entries = ns_.readdir(path);
  const std::size_t n = entries.ok() ? entries->size() : 0;
  co_await mds_op(path, config_.mds_open_time + config_.mds_readdir_per_entry *
                            static_cast<std::int64_t>(n));
  co_return entries;
}

void SimPfs::drop_caches() {
  // A restart happens long after the checkpoint: client caches and server
  // DRAM are both cold.
  for (std::size_t n = 0; n < cluster_.nodes(); ++n) cluster_.page_cache(n).clear();
  for (auto& ost : osts_) ost->drop_cache();
}

}  // namespace tio::pfs
