#include "common/stats.h"

#include <gtest/gtest.h>

namespace tio {
namespace {

TEST(Series, MeanAndSum) {
  Series s;
  s.add(1);
  s.add(2);
  s.add(3);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Series, StddevOfConstantIsZero) {
  Series s;
  for (int i = 0; i < 5; ++i) s.add(7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Series, SampleStddev) {
  Series s;  // {2, 4, 4, 4, 5, 5, 7, 9}: sample stddev = sqrt(32/7)
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), 2.138089935, 1e-9);
}

TEST(Series, StddevOfSingleSampleIsZero) {
  Series s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Series, MinMax) {
  Series s;
  for (double v : {5.0, -1.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Series, Percentiles) {
  Series s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Series, PercentileEdgeCases) {
  // n = 1: every percentile is the lone sample.
  Series one;
  one.add(42.0);
  EXPECT_DOUBLE_EQ(one.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(100), 42.0);
  // Out-of-range p clamps instead of reading out of bounds.
  EXPECT_DOUBLE_EQ(one.percentile(-10), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(1000), 42.0);
  // n = 2: nearest-rank p50 is the lower sample, p51 the upper.
  Series two;
  two.add(10.0);
  two.add(20.0);
  EXPECT_DOUBLE_EQ(two.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(two.percentile(50), 10.0);
  EXPECT_DOUBLE_EQ(two.percentile(51), 20.0);
  EXPECT_DOUBLE_EQ(two.percentile(100), 20.0);
}

TEST(Series, PercentileCacheInvalidatedByAdd) {
  Series s;
  for (double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.0);  // builds the sorted cache
  s.add(10.0);                               // must invalidate it
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Series, EmptyThrows) {
  Series s;
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.percentile(50), std::logic_error);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Counters, RegistryIsNamedAndPersistent) {
  Counter& c = counter("test.stats.alpha");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name -> same counter.
  EXPECT_EQ(&counter("test.stats.alpha"), &c);
  EXPECT_EQ(counter("test.stats.alpha").value(), 42u);
}

TEST(Counters, SnapshotFiltersByPrefixAndSortsByName) {
  counter("test.snap.b").reset();
  counter("test.snap.a").reset();
  counter("test.snap.a").add(1);
  counter("test.snap.b").add(2);
  const auto snap = counter_snapshot("test.snap.");
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "test.snap.a");
  EXPECT_EQ(snap[0].second, 1u);
  EXPECT_EQ(snap[1].first, "test.snap.b");
  EXPECT_EQ(snap[1].second, 2u);
  // Unmatched prefix -> empty.
  EXPECT_TRUE(counter_snapshot("test.snap.nothing").empty());
}

TEST(Counters, ResetCountersZeroesButKeepsRegistration) {
  Counter& c = counter("test.reset.x");
  c.add(7);
  reset_counters();
  EXPECT_EQ(c.value(), 0u);
  const auto snap = counter_snapshot("test.reset.");
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].second, 0u);
}

TEST(Grouping, NameInGroupIsDotBoundaryAware) {
  EXPECT_TRUE(name_in_group("plfs.index.builds", "plfs.index"));
  EXPECT_TRUE(name_in_group("plfs.index", "plfs.index"));  // exact match
  // The regression this API exists for: "plfs.index" must not swallow the
  // sibling group "plfs.index_cache".
  EXPECT_FALSE(name_in_group("plfs.index_cache.hits", "plfs.index"));
  EXPECT_FALSE(name_in_group("plfs.indexing", "plfs.index"));
  // A trailing dot requests a raw prefix match (legacy callers).
  EXPECT_TRUE(name_in_group("plfs.index_cache.hits", "plfs.index_cache."));
  EXPECT_FALSE(name_in_group("plfs.index_cache.hits", "plfs.index."));
  // Empty prefix matches everything.
  EXPECT_TRUE(name_in_group("anything.at.all", ""));
}

TEST(Grouping, CounterSnapshotUsesDotBoundaries) {
  counter("test.group.a").reset();
  counter("test.group.a").add(1);
  counter("test.group_extra.b").reset();
  counter("test.group_extra.b").add(2);
  const auto snap = counter_snapshot("test.group");
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first, "test.group.a");
  const auto both = counter_snapshot("test.group_extra");
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0].first, "test.group_extra.b");
}

TEST(Histograms, RecordAndExactPercentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.percentile(0), 1);
  EXPECT_EQ(h.percentile(50), 50);
  EXPECT_EQ(h.percentile(90), 90);
  EXPECT_EQ(h.percentile(99), 99);
  EXPECT_EQ(h.percentile(100), 100);
}

TEST(Histograms, SingleSampleAndEmpty) {
  Histogram h;
  EXPECT_EQ(h.percentile(50), 0);  // empty -> 0, not a crash
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  h.record(7);
  EXPECT_EQ(h.percentile(0), 7);
  EXPECT_EQ(h.percentile(100), 7);
}

TEST(Histograms, NegativeSamplesClampToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.buckets()[0], 1u);
}

TEST(Histograms, BucketBoundaries) {
  // bucket_of: 0 -> 0; v in [2^(b-1), 2^b) -> b.
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(1023), 10);
  EXPECT_EQ(Histogram::bucket_of(1024), 11);
  EXPECT_EQ(Histogram::bucket_of((std::int64_t{1} << 62)), 63);
  // bucket_min is the left edge bucket_of maps back to. Bucket 64 is
  // excluded: its left edge (2^63) is not representable as int64, so no
  // int64 sample can land there.
  for (int b = 1; b < Histogram::kBuckets - 1; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_min(b)), b) << "bucket " << b;
    if (b > 1) {
      EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_min(b) - 1), b - 1) << "bucket " << b;
    }
  }
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(Histograms, RegistryAndSnapshotAndReset) {
  Histogram& h = histogram("test.hist.alpha");
  h.reset();
  h.record(5);
  EXPECT_EQ(&histogram("test.hist.alpha"), &h);
  const auto snap = histogram_snapshot("test.hist");
  ASSERT_GE(snap.size(), 1u);
  bool found = false;
  for (const auto& [name, hp] : snap) {
    if (name == "test.hist.alpha") {
      found = true;
      EXPECT_EQ(hp->count(), 1u);
    }
  }
  EXPECT_TRUE(found);
  reset_histograms();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
}

}  // namespace
}  // namespace tio
