// Aligned-column table printer used by the figure-reproduction harnesses.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace tio {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  Table& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }
  void print(std::ostream& os) const;

  // Cell formatting helpers.
  static std::string num(double v, int precision = 2);
  static std::string eng(double v, int precision = 2);  // thousands separators for big ints

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tio
