#include "iolib/collective_buffer.h"

#include <algorithm>
#include <map>

#include "pfs/extent_map.h"

namespace tio::iolib {

namespace {

constexpr int kCbTagBase = 1000;  // user-tag space reserved for cb replies

struct Extent {
  std::uint64_t lo = ~0ull;
  std::uint64_t hi = 0;
};

sim::Task<Extent> global_extent(mpi::Comm& comm, Extent mine) {
  co_return co_await comm.allreduce(mine, 16, [](Extent a, Extent b) {
    return Extent{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
  });
}

// Domain of aggregator j: an even split of [lo, hi).
std::pair<std::uint64_t, std::uint64_t> domain_of(const Extent& e, int j, int num) {
  const std::uint64_t span = e.hi - e.lo;
  const std::uint64_t start = e.lo + span * static_cast<std::uint64_t>(j) / num;
  const std::uint64_t end = e.lo + span * (static_cast<std::uint64_t>(j) + 1) / num;
  return {start, end};
}

// Splits [offset, offset+len) across aggregator domains, invoking
// fn(j, piece_offset, piece_len) for each piece in order.
template <typename Fn>
void split_over_domains(const Extent& ext, int num_aggs, std::uint64_t offset,
                        std::uint64_t len, Fn&& fn) {
  std::uint64_t pos = offset;
  const std::uint64_t end = offset + len;
  while (pos < end) {
    int j = static_cast<int>(static_cast<unsigned __int128>(pos - ext.lo) * num_aggs /
                             (ext.hi - ext.lo));
    j = std::min(j, num_aggs - 1);
    auto [d_lo, d_hi] = domain_of(ext, j, num_aggs);
    while (pos >= d_hi && j + 1 < num_aggs) {  // guard integer-division edges
      ++j;
      std::tie(d_lo, d_hi) = domain_of(ext, j, num_aggs);
    }
    const std::uint64_t take = std::min(end, d_hi) - pos;
    fn(j, pos, take);
    pos += take;
  }
}

}  // namespace

int cb_aggregator_rank(int j, int num_aggregators, int comm_size) {
  return static_cast<int>(static_cast<std::int64_t>(j) * comm_size / num_aggregators);
}

int cb_num_aggregators(const CbConfig& config, const mpi::Comm& comm) {
  if (config.aggregators > 0) return std::min(config.aggregators, comm.size());
  const auto per_node =
      static_cast<int>(comm.runtime().cluster().config().cores_per_node);
  return std::max(1, comm.size() / std::max(1, per_node));
}

sim::Task<Status> cb_write(mpi::Comm& comm, const CbConfig& config, std::vector<CbChunk> mine,
                           const WriteFn& write_at) {
  Extent local;
  for (const auto& c : mine) {
    local.lo = std::min(local.lo, c.offset);
    local.hi = std::max(local.hi, c.offset + c.data.size());
  }
  const Extent ext = co_await global_extent(comm, local);
  if (ext.hi <= ext.lo) {
    co_await comm.barrier();
    co_return Status::Ok();
  }
  const int num_aggs = cb_num_aggregators(config, comm);

  // Split my chunks across aggregator domains.
  std::vector<std::vector<CbChunk>> outgoing(num_aggs);
  for (auto& c : mine) {
    split_over_domains(ext, num_aggs, c.offset, c.data.size(),
                       [&](int j, std::uint64_t pos, std::uint64_t take) {
                         outgoing[j].push_back(
                             CbChunk{pos, c.data.slice(pos - c.offset, take)});
                       });
  }

  // Phase 1: ship records to their aggregators (one gather per aggregator).
  pfs::ExtentMap staged;
  bool i_aggregate = false;
  for (int j = 0; j < num_aggs; ++j) {
    const int root = cb_aggregator_rank(j, num_aggs, comm.size());
    std::uint64_t bytes = 0;
    for (const auto& c : outgoing[j]) bytes += c.data.size() + 16;
    auto gathered = co_await comm.gather(root, std::move(outgoing[j]), bytes);
    if (comm.rank() == root) {
      i_aggregate = true;
      for (auto& per_rank : gathered) {
        for (auto& c : per_rank) staged.write(c.offset, std::move(c.data));
      }
    }
  }

  // Phase 2: aggregators issue large contiguous writes, capped at
  // buffer_bytes per operation.
  if (i_aggregate) {
    for (const auto& [off, view] : staged.extents()) {
      std::uint64_t pos = 0;
      while (pos < view.size()) {
        const std::uint64_t take = std::min<std::uint64_t>(config.buffer_bytes,
                                                           view.size() - pos);
        TIO_CO_RETURN_IF_ERROR(co_await write_at(off + pos, view.slice(pos, take)));
        pos += take;
      }
    }
  }
  co_await comm.barrier();
  co_return Status::Ok();
}

sim::Task<Status> cb_read(mpi::Comm& comm, const CbConfig& config, std::vector<CbRange> wants,
                          const ReadFn& read_at, std::vector<FragmentList>* out) {
  out->assign(wants.size(), FragmentList{});
  Extent local;
  for (const auto& w : wants) {
    local.lo = std::min(local.lo, w.offset);
    local.hi = std::max(local.hi, w.offset + w.len);
  }
  const Extent ext = co_await global_extent(comm, local);
  if (ext.hi <= ext.lo) {
    co_await comm.barrier();
    co_return Status::Ok();
  }
  const int num_aggs = cb_num_aggregators(config, comm);

  // A request piece as shipped to an aggregator.
  struct Piece {
    std::uint32_t want;  // index into the requester's `wants`
    std::uint64_t offset;
    std::uint64_t len;
  };
  std::vector<std::vector<Piece>> outgoing(num_aggs);
  for (std::uint32_t i = 0; i < wants.size(); ++i) {
    split_over_domains(ext, num_aggs, wants[i].offset, wants[i].len,
                       [&](int j, std::uint64_t pos, std::uint64_t take) {
                         outgoing[j].push_back(Piece{i, pos, take});
                       });
  }
  // Which aggregators will reply to me, in j order.
  std::vector<int> reply_from;
  for (int j = 0; j < num_aggs; ++j) {
    if (!outgoing[j].empty()) reply_from.push_back(j);
  }

  // Phase 1: gather request pieces per aggregator.
  struct Reply {
    std::vector<std::pair<Piece, FragmentList>> pieces;
  };
  for (int j = 0; j < num_aggs; ++j) {
    const int root = cb_aggregator_rank(j, num_aggs, comm.size());
    const std::uint64_t bytes = outgoing[j].size() * 24;
    auto gathered = co_await comm.gather(root, std::move(outgoing[j]), bytes);
    if (comm.rank() != root) continue;

    // Aggregator: merge requested ranges, read each merged run once
    // (capped at buffer_bytes), then slice replies per requester.
    std::map<std::uint64_t, std::uint64_t> runs;  // start -> end (union)
    for (const auto& per_rank : gathered) {
      for (const auto& p : per_rank) {
        const std::uint64_t s = p.offset;
        const std::uint64_t e = p.offset + p.len;
        auto it = runs.lower_bound(s);
        if (it != runs.begin() && std::prev(it)->second >= s) --it;
        std::uint64_t ns = s;
        std::uint64_t ne = e;
        while (it != runs.end() && it->first <= ne) {
          ns = std::min(ns, it->first);
          ne = std::max(ne, it->second);
          it = runs.erase(it);
        }
        runs[ns] = ne;
      }
    }
    pfs::ExtentMap staged;
    for (const auto& [s, e] : runs) {
      std::uint64_t pos = s;
      while (pos < e) {
        const std::uint64_t take = std::min<std::uint64_t>(config.buffer_bytes, e - pos);
        auto data = co_await read_at(pos, take);
        if (!data.ok()) co_return data.status();
        std::uint64_t at = pos;
        for (const auto& frag : data->fragments()) {
          staged.write(at, frag);
          at += frag.size();
        }
        // Short read (EOF): the remainder stays as holes (zeros).
        pos += take;
      }
    }
    for (int r = 0; r < comm.size(); ++r) {
      if (gathered[r].empty()) continue;
      Reply reply;
      for (const auto& p : gathered[r]) {
        reply.pieces.emplace_back(p, staged.read(p.offset, p.len));
      }
      std::uint64_t reply_bytes = 0;
      for (const auto& [p, fl] : reply.pieces) reply_bytes += fl.size();
      co_await comm.send(r, kCbTagBase + j, std::move(reply), reply_bytes);
    }
  }

  // Phase 2: requesters collect replies and reassemble in request order.
  std::vector<std::vector<std::pair<Piece, FragmentList>>> by_want(wants.size());
  for (const int j : reply_from) {
    const int root = cb_aggregator_rank(j, num_aggs, comm.size());
    auto reply = co_await comm.recv<Reply>(root, kCbTagBase + j);
    for (auto& [p, fl] : reply.pieces) {
      by_want[p.want].emplace_back(p, std::move(fl));
    }
  }
  for (std::uint32_t i = 0; i < wants.size(); ++i) {
    auto& pieces = by_want[i];
    std::sort(pieces.begin(), pieces.end(),
              [](const auto& a, const auto& b) { return a.first.offset < b.first.offset; });
    for (auto& [p, fl] : pieces) {
      for (const auto& frag : fl.fragments()) (*out)[i].append(frag);
      // Zero-pad pieces the aggregator could not fully satisfy.
      if (fl.size() < p.len) (*out)[i].append(DataView::zeros(p.len - fl.size()));
    }
  }
  co_await comm.barrier();
  co_return Status::Ok();
}

}  // namespace tio::iolib
