file(REMOVE_RECURSE
  "CMakeFiles/tio_sim.dir/engine.cc.o"
  "CMakeFiles/tio_sim.dir/engine.cc.o.d"
  "CMakeFiles/tio_sim.dir/fairshare.cc.o"
  "CMakeFiles/tio_sim.dir/fairshare.cc.o.d"
  "libtio_sim.a"
  "libtio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
