// ROMIO-style two-phase collective buffering.
//
// The paper's LANL 3 kernel writes 1 KiB records; issued directly, those
// would drown any file system. Collective buffering (Thakur et al.,
// "Data sieving and collective I/O in ROMIO") assigns each aggregator
// process a contiguous file domain, ships everyone's records to the owning
// aggregators over the (fast, otherwise idle) interconnect, and has the
// aggregators issue large contiguous file accesses.
//
// Writes: records are gathered to aggregators, coalesced in an extent map,
// and written in runs capped at `buffer_bytes`. Reads: requests are
// gathered, aggregators read merged ranges once, and slices are returned to
// the requesters.
#pragma once

#include <cstdint>
#include <vector>

#include "iolib/io_fn.h"
#include "mpisim/comm.h"

namespace tio::iolib {

struct CbConfig {
  // Number of aggregator processes (0 = one per ~cores_per_node ranks,
  // i.e. roughly one per node under block placement).
  int aggregators = 0;
  // Largest contiguous access an aggregator issues per file operation.
  std::uint64_t buffer_bytes = 4u << 20;
};

struct CbChunk {
  std::uint64_t offset = 0;
  DataView data;
};

struct CbRange {
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
  friend bool operator==(const CbRange&, const CbRange&) = default;
};

// Collective: all ranks call with their (possibly empty) chunk lists.
// `write_at` is only invoked on aggregator ranks.
sim::Task<Status> cb_write(mpi::Comm& comm, const CbConfig& config, std::vector<CbChunk> mine,
                           const WriteFn& write_at);

// Collective: satisfies each rank's `wants` (results returned in request
// order through `out`). `read_at` is only invoked on aggregator ranks.
sim::Task<Status> cb_read(mpi::Comm& comm, const CbConfig& config, std::vector<CbRange> wants,
                          const ReadFn& read_at, std::vector<FragmentList>* out);

// The aggregator rank for domain slot j of A (evenly spread over the comm,
// which lands them on distinct nodes under block placement).
int cb_aggregator_rank(int j, int num_aggregators, int comm_size);
int cb_num_aggregators(const CbConfig& config, const mpi::Comm& comm);

}  // namespace tio::iolib
