// Microbenchmarks of the index hot paths (google-benchmark): build, lookup,
// and (de)serialization — the CPU work each reader pays at open.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "plfs/index.h"

namespace tio::plfs {
namespace {

std::vector<IndexEntry> strided_entries(int writers, int per_writer) {
  std::vector<IndexEntry> out;
  std::vector<std::uint64_t> phys(writers, 0);
  constexpr std::uint64_t kRecord = 64 << 10;
  for (int r = 0; r < per_writer; ++r) {
    for (int w = 0; w < writers; ++w) {
      out.push_back(IndexEntry{(static_cast<std::uint64_t>(r) * writers + w) * kRecord, kRecord,
                               phys[w], static_cast<std::int64_t>(out.size() + 1),
                               static_cast<std::uint32_t>(w)});
      phys[w] += kRecord;
    }
  }
  return out;
}

void BM_IndexBuildStrided(benchmark::State& state) {
  const auto entries = strided_entries(static_cast<int>(state.range(0)), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Index::build(entries));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries.size()));
}
BENCHMARK(BM_IndexBuildStrided)->Arg(64)->Arg(512)->Arg(2048);

void BM_IndexBuildSequentialCompresses(benchmark::State& state) {
  // One writer, purely sequential: compression collapses to one mapping.
  std::vector<IndexEntry> entries;
  for (int i = 0; i < state.range(0); ++i) {
    entries.push_back(IndexEntry{static_cast<std::uint64_t>(i) * 4096, 4096,
                                 static_cast<std::uint64_t>(i) * 4096, i + 1, 0});
  }
  for (auto _ : state) {
    const Index idx = Index::build(entries);
    benchmark::DoNotOptimize(idx.mapping_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_IndexBuildSequentialCompresses)->Arg(1024)->Arg(16384);

void BM_IndexLookup(benchmark::State& state) {
  const Index idx = Index::build(strided_entries(static_cast<int>(state.range(0)), 64));
  Rng rng(42);
  const std::uint64_t size = idx.logical_size();
  for (auto _ : state) {
    const std::uint64_t off = rng.below(size - 1);
    benchmark::DoNotOptimize(idx.lookup(off, std::min<std::uint64_t>(1 << 20, size - off)));
  }
}
BENCHMARK(BM_IndexLookup)->Arg(64)->Arg(1024);

void BM_EntrySerialization(benchmark::State& state) {
  const auto entries = strided_entries(256, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serialize_entries(entries));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries.size() * IndexEntry::kSerializedSize));
}
BENCHMARK(BM_EntrySerialization);

void BM_EntryDeserialization(benchmark::State& state) {
  const auto entries = strided_entries(256, 64);
  FragmentList fl;
  fl.append(DataView::literal(serialize_entries(entries)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(deserialize_entries(fl));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fl.size()));
}
BENCHMARK(BM_EntryDeserialization);

}  // namespace
}  // namespace tio::plfs
