// Metadata-storm harness for the federated-MDS experiments (Figs. 7, 8b-d).
//
// N-N storm: every process opens (creating) and closes many unique files in
// one shared logical directory — the create phase of an N-N checkpoint.
// N-1 storm: every process write-opens the same logical file — PLFS's
// container/subdir creation burst.
#pragma once

#include <cstdint>

#include "testbed/testbed.h"

namespace tio::workloads {

struct MetaSpec {
  int files_per_proc = 1;
  bool use_plfs = true;
  bool shared_file = false;  // true = N-1 storm, false = N-N storm
  std::string dir = "meta";
};

struct MetaResult {
  double open_s = 0;   // includes creation (paper Fig. 7a)
  double close_s = 0;  // (paper Fig. 7b)
};

// Runs the storm on `nprocs` ranks; phases are separated by barriers and
// timed on rank 0.
MetaResult run_metadata_storm(testbed::Rig& rig, int nprocs, const MetaSpec& spec);

}  // namespace tio::workloads
