// Phase-timing harness: runs a bulk-synchronous write job and a restart
// (read) job against a Target and reports the paper's metrics — open, I/O,
// and close phase times, and effective bandwidth, which the paper defines
// to include open and close time (Section IV, note 2).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "testbed/testbed.h"
#include "workloads/target.h"

namespace tio::workloads {

struct IoOp {
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
};
// Per-rank op list for a given job size.
using OpGen = std::function<std::vector<IoOp>(int rank, int nprocs)>;
// Custom phase body (used by the formatting-library kernels).
using PhaseFn = std::function<sim::Task<Status>(mpi::Comm&, Target&)>;

struct PhaseTimes {
  double open_s = 0;
  double io_s = 0;
  double close_s = 0;
  std::uint64_t bytes = 0;
  double total_s() const { return open_s + io_s + close_s; }
  // Effective bandwidth (bytes/s) including open and close.
  double effective_bw() const { return total_s() > 0 ? static_cast<double>(bytes) / total_s() : 0; }
};

struct JobSpec {
  std::string file = "ckpt";
  OpGen ops;            // write ops; also the read pattern unless read_ops set
  OpGen read_ops;
  PhaseFn write_fn;     // overrides `ops` for the write phase when set
  PhaseFn read_fn;      // overrides read ops when set
  TargetOptions target;
  bool do_write = true;
  bool do_read = true;
  bool verify = true;            // reads are checked against written content
  bool drop_caches_before_read = false;
  int read_nprocs = 0;           // 0 = same as the write job
  std::uint64_t seed = 0x5eedf00d;
  std::uint64_t bytes_override = 0;  // phase byte count when write_fn/read_fn used
};

struct JobResult {
  PhaseTimes write;
  PhaseTimes read;
};

// Runs the job on `nprocs` simulated ranks. Throws on any I/O failure (the
// benches must not silently report nonsense).
JobResult run_job(testbed::Rig& rig, int nprocs, const JobSpec& spec);

// Sum of op bytes over all ranks (the denominator of effective bandwidth).
std::uint64_t total_bytes(const OpGen& gen, int nprocs);

}  // namespace tio::workloads
