# Empty dependencies file for fig7_metadata_nn.
# This may be replaced when dependencies are built.
